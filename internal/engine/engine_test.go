package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"circuitql/internal/guard"
	"circuitql/internal/query"
	"circuitql/internal/relation"
	"circuitql/internal/workload"
)

func mustDerive(t testing.TB, q *query.Query, db query.Database) query.DCSet {
	t.Helper()
	dcs, err := query.DeriveDC(q, db)
	if err != nil {
		t.Fatal(err)
	}
	return dcs
}

// TestEngineServesCorrectResults cross-checks every full catalog query
// against the reference RAM evaluation, twice (cold then cached).
func TestEngineServesCorrectResults(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	for _, ent := range query.Catalog() {
		if !ent.Query.IsFull() {
			continue
		}
		if len(ent.Query.Atoms) > 4 {
			continue // keep compile time modest; bowtie is covered elsewhere
		}
		db := workload.ForQuery(ent.Query, 3, 12)
		dcs := mustDerive(t, ent.Query, db)
		want, err := query.Evaluate(ent.Query, db)
		if err != nil {
			t.Fatalf("%s: reference: %v", ent.Name, err)
		}
		req := Request{Query: ent.Query, DCs: dcs, DB: db}
		cold := e.Serve(context.Background(), req)
		if cold.Err != nil {
			t.Fatalf("%s: cold serve: %v", ent.Name, cold.Err)
		}
		if cold.CacheHit {
			t.Errorf("%s: first request reported a cache hit", ent.Name)
		}
		if !cold.Output.Equal(want) {
			t.Fatalf("%s: cold output differs from reference", ent.Name)
		}
		warm := e.Serve(context.Background(), req)
		if warm.Err != nil {
			t.Fatalf("%s: warm serve: %v", ent.Name, warm.Err)
		}
		if !warm.CacheHit {
			t.Errorf("%s: repeat request missed the cache", ent.Name)
		}
		if !warm.Output.Equal(want) {
			t.Fatalf("%s: warm output differs from reference", ent.Name)
		}
		if warm.Tier != TierVM {
			t.Errorf("%s: warm request served by %q, want vm", ent.Name, warm.Tier)
		}
	}
}

// TestEngineSharesPlansAcrossRenaming is the point of the canonical
// fingerprint: a request whose query differs only by variable names and
// atom order must hit the plan compiled for the original, and its output
// must carry the new request's column names.
func TestEngineSharesPlansAcrossRenaming(t *testing.T) {
	e := New(Config{})
	defer e.Close()

	q1 := query.MustParse("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
	db := workload.TriangleDB(workload.TriangleUniform, 5, 12)
	dcs1 := mustDerive(t, q1, db)
	r1 := e.Serve(context.Background(), Request{Query: q1, DCs: dcs1, DB: db})
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}

	// Same hypergraph, renamed variables, atoms reordered. The DC set is
	// re-derived from the same database, so it is the same set of
	// (relation, bound) facts in a different order.
	q2 := query.MustParse("Q(Y,Z,X) :- S(Y,Z), T(X,Z), R(X,Y)")
	dcs2 := mustDerive(t, q2, db)
	r2 := e.Serve(context.Background(), Request{Query: q2, DCs: dcs2, DB: db})
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if r2.Fingerprint != r1.Fingerprint {
		t.Fatalf("renamed query got a different fingerprint (%s vs %s)", r2.Fingerprint.Short(), r1.Fingerprint.Short())
	}
	if !r2.CacheHit {
		t.Fatal("renamed query missed the cache")
	}
	want, err := query.Evaluate(q2, db)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Output.Equal(want) {
		t.Fatalf("renamed query output differs from its own reference evaluation\n got %v\nwant %v", r2.Output, want)
	}
	if m := e.Metrics(); m.Compiles != 1 {
		t.Fatalf("expected exactly one compile across the renamed pair, got %d", m.Compiles)
	}
}

// TestEngineEviction forces a tiny gate budget and checks plans are
// evicted (and recompiled on return) without affecting answers.
func TestEngineEviction(t *testing.T) {
	e := New(Config{MaxCacheGates: 1}) // every insert displaces the previous plan
	defer e.Close()

	mk := func(src string) Request {
		q := query.MustParse(src)
		db := workload.ForQuery(q, 7, 8)
		return Request{Query: q, DCs: mustDerive(t, q, db), DB: db}
	}
	a := mk("Q(A,B,C) :- R(A,B), S(B,C)")
	b := mk("Q(A,B,C,D) :- R(A,B), S(A,C), T(A,D)")
	for i := 0; i < 2; i++ {
		if r := e.Serve(context.Background(), a); r.Err != nil || r.CacheHit {
			t.Fatalf("round %d a: err=%v hit=%v (want recompile after eviction)", i, r.Err, r.CacheHit)
		}
		if r := e.Serve(context.Background(), b); r.Err != nil || r.CacheHit {
			t.Fatalf("round %d b: err=%v hit=%v", i, r.Err, r.CacheHit)
		}
	}
	m := e.Metrics()
	if m.Evictions < 3 {
		t.Fatalf("expected ≥3 evictions with a 1-gate budget, got %d", m.Evictions)
	}
	if m.CachedPlans != 1 {
		t.Fatalf("expected exactly 1 resident plan, got %d", m.CachedPlans)
	}
}

// TestEngineNonFullQueryServedByRAM: non-full queries have no Theorem-4
// plan; the engine pins them to the RAM tier via a sticky negative cache
// entry (one canonicalization miss, no compile attempts).
func TestEngineNonFullQueryServedByRAM(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	q := query.Path2Projected()
	db := workload.ForQuery(q, 9, 16)
	req := Request{Query: q, DCs: mustDerive(t, q, db), DB: db}
	want, err := query.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r := e.Serve(context.Background(), req)
		if r.Err != nil {
			t.Fatalf("round %d: %v", i, r.Err)
		}
		if r.Tier != TierRAM {
			t.Fatalf("round %d: served by %q, want ram", i, r.Tier)
		}
		if !r.Output.Equal(want) {
			t.Fatalf("round %d: output differs from reference", i)
		}
	}
	m := e.Metrics()
	if m.Compiles != 0 {
		t.Fatalf("non-full query should not reach the compiler, got %d compiles", m.Compiles)
	}
	if m.Hits != 1 {
		t.Fatalf("second request should hit the sticky entry, hits=%d", m.Hits)
	}
}

// TestEngineValidation: malformed requests and nonconforming databases
// surface as ErrInvalidInput, not crashes.
func TestEngineValidation(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	q := query.Triangle()
	db := workload.TriangleDB(workload.TriangleUniform, 1, 8)

	// Constraint set referencing the wrong query.
	other := query.Star3()
	r := e.Serve(context.Background(), Request{Query: q, DCs: query.Cardinalities(other, 8), DB: db})
	if !errors.Is(r.Err, guard.ErrInvalidInput) {
		t.Fatalf("bad DC set: got %v, want ErrInvalidInput", r.Err)
	}

	// Database violating the compiled cardinality bound.
	small := query.Cardinalities(q, 2)
	r = e.Serve(context.Background(), Request{Query: q, DCs: small, DB: db})
	if !errors.Is(r.Err, guard.ErrInvalidInput) {
		t.Fatalf("oversized db: got %v, want ErrInvalidInput", r.Err)
	}
}

// TestEngineCanceledContext: a dead context fails fast with ErrCanceled.
func TestEngineCanceledContext(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := query.Triangle()
	db := workload.TriangleDB(workload.TriangleUniform, 1, 8)
	r := e.Serve(ctx, Request{Query: q, DCs: query.Cardinalities(q, 8), DB: db})
	if !errors.Is(r.Err, guard.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", r.Err)
	}
}

// TestEngineClose: Close drains and further submissions fail cleanly.
func TestEngineClose(t *testing.T) {
	e := New(Config{Workers: 2})
	q := query.Triangle()
	db := workload.TriangleDB(workload.TriangleUniform, 2, 8)
	req := Request{Query: q, DCs: query.Cardinalities(q, 8), DB: db}
	if r := e.Serve(context.Background(), req); r.Err != nil {
		t.Fatal(r.Err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	r := e.Serve(context.Background(), req)
	if !errors.Is(r.Err, guard.ErrInvalidInput) {
		t.Fatalf("serve after close: got %v, want ErrInvalidInput", r.Err)
	}
}

// TestEngineServeBatch fans independent requests over the pool.
func TestEngineServeBatch(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Close()
	var reqs []Request
	var wants []*queryResult
	for _, ent := range []query.CatalogEntry{
		{Name: "triangle", Query: query.Triangle()},
		{Name: "path2", Query: query.Path2()},
		{Name: "star3", Query: query.Star3()},
	} {
		db := workload.ForQuery(ent.Query, 11, 10)
		want, err := query.Evaluate(ent.Query, db)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, Request{Query: ent.Query, DCs: mustDerive(t, ent.Query, db), DB: db})
		wants = append(wants, &queryResult{name: ent.Name, want: want})
	}
	for _, res := range [][]Result{
		e.ServeBatch(context.Background(), reqs),
		e.ServeBatch(context.Background(), reqs), // second pass: all hits
	} {
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("%s: %v", wants[i].name, r.Err)
			}
			if !r.Output.Equal(wants[i].want) {
				t.Fatalf("%s: batch output differs from reference", wants[i].name)
			}
		}
	}
	if m := e.Metrics(); m.Compiles != 3 || m.Hits != 3 {
		t.Fatalf("want 3 compiles + 3 hits, got compiles=%d hits=%d", m.Compiles, m.Hits)
	}
}

type queryResult struct {
	name string
	want *relation.Relation
}

// TestEngineProcessPanicContained: a panic escaping processInner outside
// the per-tier recovers (here: Canonicalize dereferencing a nil Query)
// must surface as a typed error, never as a zero Result whose nil Err
// reads as success.
func TestEngineProcessPanicContained(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	res := e.Serve(context.Background(), Request{})
	if res.Err == nil {
		t.Fatalf("panic swallowed: got %+v", res)
	}
	if !errors.Is(res.Err, guard.ErrInternal) {
		t.Fatalf("got %v, want ErrInternal", res.Err)
	}
	if m := e.Metrics(); m.Failed != 1 {
		t.Fatalf("failed=%d, want 1", m.Failed)
	}
	// The worker that contained the panic keeps serving.
	q := query.Triangle()
	db := workload.TriangleDB(workload.TriangleUniform, 1, 8)
	if r := e.Serve(context.Background(), Request{Query: q, DCs: query.Cardinalities(q, 8), DB: db}); r.Err != nil {
		t.Fatal(r.Err)
	}
}

// flightLeaderSetup registers a fake compile flight for the request's
// fingerprint (so a real request becomes a follower), starts the request,
// and blocks until it has joined the flight. The returned resolve
// function completes the flight the way a leader would.
func flightLeaderSetup(t *testing.T, e *Engine, req Request) (<-chan Result, func(ent *entry, err error)) {
	t.Helper()
	canon, err := query.Canonicalize(req.Query, req.DCs)
	if err != nil {
		t.Fatal(err)
	}
	s := e.shardOf(canon.FP)
	s.mu.Lock()
	fl, leader := s.flights.join(canon.FP)
	s.mu.Unlock()
	if !leader {
		t.Fatal("a flight is already in progress")
	}
	done := make(chan Result, 1)
	go func() { done <- e.Serve(context.Background(), req) }()
	// The follower records its miss and joins the flight under one
	// critical section, so misses > 0 implies it is waiting on fl.done.
	for s.misses.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	return done, func(ent *entry, err error) {
		s.mu.Lock()
		fl.ent, fl.err = ent, err
		s.flights.leave(canon.FP)
		s.mu.Unlock()
		close(fl.done)
	}
}

// TestEngineFollowerOutlivesCanceledLeader: a singleflight follower whose
// leader fails with the *leader's* cancellation must not inherit it — it
// retries under its own live context and compiles the plan itself.
func TestEngineFollowerOutlivesCanceledLeader(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	q := query.MustParse("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
	db := workload.ForQuery(q, 5, 8)
	req := Request{Query: q, DCs: mustDerive(t, q, db), DB: db}
	want, err := query.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}

	done, resolve := flightLeaderSetup(t, e, req)
	resolve(nil, fmt.Errorf("%w: leader request canceled", guard.ErrCanceled))

	res := <-done
	if res.Err != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", res.Err)
	}
	if !res.Output.Equal(want) {
		t.Fatal("follower retry produced a wrong answer")
	}
	if m := e.Metrics(); m.Compiles != 1 {
		t.Fatalf("follower should have recompiled exactly once, compiles=%d", m.Compiles)
	}
}

// TestEngineInternalCompileFaultNotSticky: an internal compiler fault
// serves its own flight from the RAM tier but must not pin the query
// shape — the next request recompiles and gets the circuit plan.
func TestEngineInternalCompileFaultNotSticky(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	q := query.MustParse("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
	db := workload.ForQuery(q, 6, 8)
	req := Request{Query: q, DCs: mustDerive(t, q, db), DB: db}
	want, err := query.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := query.Canonicalize(req.Query, req.DCs)
	if err != nil {
		t.Fatal(err)
	}

	done, resolve := flightLeaderSetup(t, e, req)
	// Resolve the flight as compile() does for an ErrInternal fault: an
	// uncached RAM-only entry.
	resolve(&entry{
		fp:         canon.FP,
		canon:      canon,
		compileErr: fmt.Errorf("%w: injected compiler fault", guard.ErrInternal),
		gates:      1,
		uncached:   true,
	}, nil)

	res := <-done
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Tier != TierRAM {
		t.Fatalf("faulted plan served by %q, want ram", res.Tier)
	}
	if !res.Output.Equal(want) {
		t.Fatal("RAM fallback produced a wrong answer")
	}

	res = e.Serve(context.Background(), req)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.CacheHit {
		t.Fatal("uncached fault entry leaked into the plan cache")
	}
	if res.Tier != TierVM {
		t.Fatalf("retry served by %q, want vm (fault must not be sticky)", res.Tier)
	}
	if m := e.Metrics(); m.Compiles != 1 {
		t.Fatalf("retry should have compiled exactly once, compiles=%d", m.Compiles)
	}
}
