package engine

import (
	"testing"
	"time"
)

// TestLatencyHistogramQuantile pins the bucket geometry: observe() puts
// a value v in bucket bits.Len64(v), so bucket i covers [2^{i-1}, 2^i)
// microseconds and Quantile must report 2^i — not 2^{i+1} — as the
// bucket's upper edge.
func TestLatencyHistogramQuantile(t *testing.T) {
	var h latencyHist
	h.observe(500 * time.Nanosecond) // bucket 0: sub-microsecond
	h.observe(time.Microsecond)      // bucket 1: [1µs, 2µs)
	h.observe(3 * time.Microsecond)  // bucket 2: [2µs, 4µs)
	s := h.snapshot()
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.01, 1 * time.Microsecond},
		{0.50, 2 * time.Microsecond},
		{1.00, 4 * time.Microsecond},
	} {
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if s.Count != 3 {
		t.Errorf("Count = %d, want 3", s.Count)
	}
}
