package engine

import (
	"context"
	"sync"
	"time"

	"circuitql/internal/faultinject"
	"circuitql/internal/guard"
	"circuitql/internal/obs"
	"circuitql/internal/qos"
	"circuitql/internal/query"
	"circuitql/internal/vm"
)

// batcher coalesces concurrent same-fingerprint vm evaluations into
// lock-step batches: the first request of a fingerprint opens a window;
// companions arriving within it join; the batch dispatches when it
// fills (maxSize) or the window elapses. One worker's goroutine (or the
// window timer) runs the whole batch through vm.Program.EvalBatch and
// fans the per-request output slices back out.
//
// Deadline fan-out: each member keeps waiting on its own context, so a
// member whose clock runs out unblocks immediately with its deadline
// error while the batch finishes for the others. The batch itself runs
// under the engine's lifetime context plus the widest member deadline,
// so one short-deadline member cannot truncate its companions'
// evaluation.
type batcher struct {
	maxSize int
	window  time.Duration
	lifeCtx context.Context
	ledger  *qos.Ledger

	mu   sync.Mutex
	pend map[query.Fingerprint]*pendingBatch
}

type member struct {
	ctx    context.Context
	inputs []vm.Word
	out    chan memberResult // buffered(1); the dispatcher never blocks
}

type memberResult struct {
	raw []vm.Word
	err error
}

type pendingBatch struct {
	prog    *vm.Program
	workers int
	members []*member
	timer   *time.Timer
}

func newBatcher(maxSize int, window time.Duration, lifeCtx context.Context, ledger *qos.Ledger) *batcher {
	return &batcher{
		maxSize: maxSize,
		window:  window,
		lifeCtx: lifeCtx,
		ledger:  ledger,
		pend:    make(map[query.Fingerprint]*pendingBatch),
	}
}

// do submits one request's packed inputs for fingerprint fp and blocks
// until its slice of the batch output (or an error) is ready, or until
// the request's own context dies.
func (b *batcher) do(ctx context.Context, fp query.Fingerprint, prog *vm.Program, inputs []vm.Word, workers int) ([]vm.Word, error) {
	m := &member{ctx: ctx, inputs: inputs, out: make(chan memberResult, 1)}

	b.mu.Lock()
	pb := b.pend[fp]
	if pb == nil || pb.prog != prog {
		// First member (or the plan was recompiled mid-window: keep the
		// old batch dispatching on its own timer and open a fresh one).
		pb = &pendingBatch{prog: prog, workers: workers, members: []*member{m}}
		b.pend[fp] = pb
		pb.timer = time.AfterFunc(b.window, func() {
			b.mu.Lock()
			if b.pend[fp] != pb {
				// Already dispatched by the size trigger.
				b.mu.Unlock()
				return
			}
			delete(b.pend, fp)
			b.mu.Unlock()
			b.run(pb)
		})
		b.mu.Unlock()
	} else {
		pb.members = append(pb.members, m)
		if pb.workers < workers {
			pb.workers = workers
		}
		if len(pb.members) >= b.maxSize {
			// Full: dispatch now on this worker's goroutine.
			delete(b.pend, fp)
			pb.timer.Stop()
			b.mu.Unlock()
			b.run(pb)
		} else {
			b.mu.Unlock()
		}
	}

	select {
	case r := <-m.out:
		return r.raw, r.err
	case <-ctxDone(ctx):
		// The batch may still complete for the other members; this
		// member's result is discarded into its buffered channel.
		return nil, guard.Poll(ctx)
	}
}

// run evaluates one dispatched batch and distributes results. The
// evaluation context is assembled from the engine lifetime plus the
// first live member's observability/fault values, with the widest
// member deadline applied only when every member has one.
func (b *batcher) run(pb *pendingBatch) {
	b.ledger.Batch(len(pb.members))

	ctx := b.lifeCtx
	var deadline time.Time
	all := true
	for _, m := range pb.members {
		if m.ctx == nil {
			all = false
			break
		}
		d, ok := m.ctx.Deadline()
		if !ok {
			all = false
			break
		}
		if d.After(deadline) {
			deadline = d
		}
	}
	if all && len(pb.members) > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	// Mine the leader's context for values (span, budget, injector) so
	// the batch's single vm-eval span nests under the leading request's
	// serve span and fault/budget harnesses see the batch.
	lead := pb.members[0].ctx
	if lead != nil {
		if sp := obs.SpanFromContext(lead); sp != nil {
			ctx = obs.WithSpan(ctx, sp)
		}
		if bud := guard.FromContext(lead); bud != nil {
			ctx = guard.WithBudget(ctx, bud)
		}
		if inj := faultinject.FromContext(lead); inj != nil {
			ctx = faultinject.WithInjector(ctx, inj)
		}
	}

	batch := make([][]vm.Word, len(pb.members))
	for i, m := range pb.members {
		batch[i] = m.inputs
	}
	outs, err := pb.prog.EvalBatchOpts(ctx, batch, vm.Options{Workers: pb.workers})
	for i, m := range pb.members {
		if err != nil {
			m.out <- memberResult{err: err}
		} else {
			m.out <- memberResult{raw: outs[i]}
		}
	}
}
