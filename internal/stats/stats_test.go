package stats

import (
	"math"
	"strings"
	"testing"
)

func TestFitPowerLawExact(t *testing.T) {
	xs := []float64{2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	k, c := FitPowerLaw(xs, ys)
	if math.Abs(k-1.5) > 1e-9 || math.Abs(c-3) > 1e-9 {
		t.Fatalf("fit = (%g, %g), want (1.5, 3)", k, c)
	}
}

func TestFitPowerLawNoisy(t *testing.T) {
	xs := []float64{10, 100, 1000, 10000}
	ys := []float64{105, 9800, 1.03e6, 0.97e8}
	k, _ := FitPowerLaw(xs, ys)
	if math.Abs(k-2) > 0.05 {
		t.Fatalf("noisy quadratic fit exponent = %g", k)
	}
}

func TestFitPowerLawPanics(t *testing.T) {
	cases := []func(){
		func() { FitPowerLaw([]float64{1}, []float64{1}) },
		func() { FitPowerLaw([]float64{1, 2}, []float64{1}) },
		func() { FitPowerLaw([]float64{1, -2}, []float64{1, 2}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("N", "cost", "ratio")
	tb.Row(16, 4096.0, 1.234567)
	tb.Row(256, 65536.0, 0.5)
	s := tb.String()
	if !strings.Contains(s, "N") || !strings.Contains(s, "4096") || !strings.Contains(s, "1.23") {
		t.Fatalf("table = %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("lines = %d", len(lines))
	}
}
