// Package stats holds the small numeric and formatting helpers the
// experiment harness uses: log-log power-law fitting (to recover growth
// exponents from measured circuit sizes) and aligned table rendering for
// the regenerated paper tables.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// FitPowerLaw fits y ≈ c·x^k by least squares on (log x, log y) and
// returns the exponent k and coefficient c. All inputs must be positive
// and the slices of equal length ≥ 2.
func FitPowerLaw(xs, ys []float64) (k, c float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: need ≥ 2 matched samples")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: power-law fit needs positive samples")
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	k = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	c = math.Exp((sy - k*sx) / n)
	return k, c
}

// Table renders rows with aligned columns; the first row is the header.
type Table struct {
	rows [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table {
	return &Table{rows: [][]string{header}}
}

// Row appends a row; values are formatted with %v (floats compactly).
func (t *Table) Row(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%.3g", x)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, 0)
	for _, row := range t.rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString("\n")
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
