// Package workload provides deterministic, seeded data generators for
// the experiment harness: uniform and skewed random relations, the
// AGM-tight worst-case triangle instance, functional-dependency-
// respecting data, and ready-made databases for the canonical query
// suite.
package workload

import (
	"math/rand"

	"circuitql/internal/query"
	"circuitql/internal/relation"
)

// UniformBinary returns a binary relation with exactly n distinct tuples
// drawn uniformly from [0, dom)². dom² must be at least n.
func UniformBinary(seed int64, n, dom int) *relation.Relation {
	if dom*dom < n {
		panic("workload: domain too small for requested cardinality")
	}
	rng := rand.New(rand.NewSource(seed))
	r := relation.New("x", "y")
	for r.Len() < n {
		r.Insert(int64(rng.Intn(dom)), int64(rng.Intn(dom)))
	}
	return r
}

// SkewedBinary returns a binary relation with n distinct tuples whose
// first column follows a Zipf-like distribution (heavy hitters), the
// adversarial shape for join processing.
func SkewedBinary(seed int64, n, dom int, s float64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	if s < 1.01 {
		s = 1.01
	}
	z := rand.NewZipf(rng, s, 1, uint64(dom-1))
	r := relation.New("x", "y")
	for tries := 0; r.Len() < n && tries < 100*n; tries++ {
		r.Insert(int64(z.Uint64()), int64(rng.Intn(dom)))
	}
	// Fill up uniformly if the skew exhausted distinct pairs.
	for r.Len() < n {
		r.Insert(int64(rng.Intn(dom)), int64(rng.Intn(dom)))
	}
	return r
}

// FDBinary returns a binary relation with n distinct tuples satisfying
// the functional dependency x → y.
func FDBinary(seed int64, n, dom int) *relation.Relation {
	if dom < n {
		panic("workload: domain too small for an FD relation")
	}
	rng := rand.New(rand.NewSource(seed))
	img := make(map[int64]int64)
	r := relation.New("x", "y")
	for r.Len() < n {
		x := int64(rng.Intn(dom))
		y, ok := img[x]
		if !ok {
			y = int64(rng.Intn(dom))
			img[x] = y
		}
		r.Insert(x, y)
	}
	return r
}

// WorstCaseTriangle returns the AGM-tight triangle instance: with
// side = ⌊√n⌋, each relation is the complete bipartite side×side grid
// (≈ n tuples each) and the output has side³ ≈ n^{3/2} triangles.
func WorstCaseTriangle(n int) query.Database {
	side := 1
	for (side+1)*(side+1) <= n {
		side++
	}
	grid := relation.New("x", "y")
	for a := 0; a < side; a++ {
		for b := 0; b < side; b++ {
			grid.Insert(int64(a), int64(b))
		}
	}
	return query.Database{"R": grid.Clone(), "S": grid.Clone(), "T": grid.Clone()}
}

// TriangleKind selects the triangle workload shape.
type TriangleKind int

// Triangle workload shapes.
const (
	TriangleUniform TriangleKind = iota
	TriangleSkewed
	TriangleWorstCase
)

// TriangleDB builds a triangle-query database of the requested kind with
// about n tuples per relation over a domain sized for moderate join
// selectivity.
func TriangleDB(kind TriangleKind, seed int64, n int) query.Database {
	switch kind {
	case TriangleWorstCase:
		return WorstCaseTriangle(n)
	case TriangleSkewed:
		dom := domFor(n)
		return query.Database{
			"R": SkewedBinary(seed, n, dom, 1.3),
			"S": SkewedBinary(seed+1, n, dom, 1.3),
			"T": SkewedBinary(seed+2, n, dom, 1.3),
		}
	default:
		dom := domFor(n)
		return query.Database{
			"R": UniformBinary(seed, n, dom),
			"S": UniformBinary(seed+1, n, dom),
			"T": UniformBinary(seed+2, n, dom),
		}
	}
}

// ForQuery builds a uniform database for any catalog query: one relation
// per distinct atom name, each with n tuples of the atom's arity.
func ForQuery(q *query.Query, seed int64, n int) query.Database {
	db := query.Database{}
	s := seed
	for _, a := range q.Atoms {
		if _, ok := db[a.Name]; ok {
			continue
		}
		db[a.Name] = uniformK(s, n, domFor(n), len(a.Vars))
		s++
	}
	return db
}

func uniformK(seed int64, n, dom, k int) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	schema := make([]string, k)
	for i := range schema {
		schema[i] = string(rune('a' + i))
	}
	r := relation.New(schema...)
	row := make([]int64, k)
	for tries := 0; r.Len() < n && tries < 1000*n; tries++ {
		for i := range row {
			row[i] = int64(rng.Intn(dom))
		}
		r.Insert(row...)
	}
	return r
}

// domFor picks a domain giving a join-friendly density.
func domFor(n int) int {
	dom := 2
	for dom*dom < 4*n {
		dom++
	}
	return dom
}
