package workload

import (
	"testing"

	"circuitql/internal/query"
)

func TestUniformBinary(t *testing.T) {
	r := UniformBinary(1, 50, 20)
	if r.Len() != 50 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Deterministic under the same seed.
	if !r.Equal(UniformBinary(1, 50, 20)) {
		t.Fatal("not deterministic")
	}
	if r.Equal(UniformBinary(2, 50, 20)) {
		t.Fatal("seed has no effect")
	}
}

func TestUniformBinaryPanicsOnSmallDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UniformBinary(1, 100, 5)
}

func TestSkewedBinaryIsSkewed(t *testing.T) {
	r := SkewedBinary(3, 200, 100, 1.3)
	if r.Len() != 200 {
		t.Fatalf("Len = %d", r.Len())
	}
	u := UniformBinary(3, 200, 100)
	if r.Degree("x") <= u.Degree("x") {
		t.Fatalf("skewed degree %d not above uniform %d", r.Degree("x"), u.Degree("x"))
	}
}

func TestFDBinary(t *testing.T) {
	r := FDBinary(5, 30, 100)
	if r.Len() != 30 {
		t.Fatalf("Len = %d", r.Len())
	}
	// x -> y: degree of x is 1.
	if d := r.Degree("x"); d != 1 {
		t.Fatalf("deg(x) = %d, want 1 (FD)", d)
	}
}

func TestWorstCaseTriangle(t *testing.T) {
	db := WorstCaseTriangle(16)
	q := query.Triangle()
	out, err := query.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// side = 4: 4³ = 64 triangles from 16-tuple relations.
	if db["R"].Len() != 16 || out.Len() != 64 {
		t.Fatalf("|R| = %d, |Q| = %d", db["R"].Len(), out.Len())
	}
}

func TestTriangleDBKinds(t *testing.T) {
	for _, kind := range []TriangleKind{TriangleUniform, TriangleSkewed, TriangleWorstCase} {
		db := TriangleDB(kind, 9, 30)
		for _, name := range []string{"R", "S", "T"} {
			if db[name] == nil || db[name].Len() == 0 {
				t.Fatalf("kind %d: missing %s", kind, name)
			}
		}
	}
}

func TestForQuery(t *testing.T) {
	q := query.LoomisWhitney4()
	db := ForQuery(q, 21, 25)
	if len(db) != 4 {
		t.Fatalf("relations = %d", len(db))
	}
	for name, r := range db {
		if r.Arity() != 3 {
			t.Fatalf("%s arity = %d", name, r.Arity())
		}
		if r.Len() != 25 {
			t.Fatalf("%s len = %d", name, r.Len())
		}
	}
	if _, err := query.Evaluate(q, db); err != nil {
		t.Fatal(err)
	}
}
