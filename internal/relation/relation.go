// Package relation implements in-memory relations with set semantics and
// the standard RAM operators used throughout the paper: selection,
// projection, natural join, semijoin, union, ordering, and group-by
// aggregation, plus degree measurement for degree constraints.
//
// Relations are the substrate both for the reference (RAM) query
// evaluators and for checking circuit evaluation results. Tuples draw
// their values from a signed 64-bit integer domain; attribute names are
// strings. All operators are deterministic: output tuple order is the
// order of first insertion unless an explicit ordering is requested.
package relation

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Tuple is a row of attribute values, positionally matching a relation's
// schema.
type Tuple []int64

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Relation is a set of tuples over a fixed schema. The zero value is not
// usable; construct relations with New.
type Relation struct {
	schema []string
	index  map[string]int
	tuples []Tuple
	seen   map[string]struct{}
}

// New returns an empty relation with the given attribute names. Attribute
// names must be non-empty and distinct.
func New(schema ...string) *Relation {
	r := &Relation{
		schema: append([]string(nil), schema...),
		index:  make(map[string]int, len(schema)),
		seen:   make(map[string]struct{}),
	}
	for i, a := range schema {
		if a == "" {
			panic("relation: empty attribute name")
		}
		if _, dup := r.index[a]; dup {
			panic(fmt.Sprintf("relation: duplicate attribute %q", a))
		}
		r.index[a] = i
	}
	return r
}

// FromTuples builds a relation from a schema and a list of rows.
func FromTuples(schema []string, rows ...Tuple) *Relation {
	r := New(schema...)
	for _, t := range rows {
		r.Insert(t...)
	}
	return r
}

// Schema returns a copy of the attribute names in order.
func (r *Relation) Schema() []string { return append([]string(nil), r.schema...) }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.schema) }

// Len returns the number of (distinct) tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// HasAttr reports whether the schema contains attribute a.
func (r *Relation) HasAttr(a string) bool {
	_, ok := r.index[a]
	return ok
}

// AttrPos returns the position of attribute a in the schema.
func (r *Relation) AttrPos(a string) int {
	i, ok := r.index[a]
	if !ok {
		panic(fmt.Sprintf("relation: unknown attribute %q in schema %v", a, r.schema))
	}
	return i
}

func key(t Tuple) string {
	var b strings.Builder
	b.Grow(8 * len(t))
	var buf [8]byte
	for _, v := range t {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		b.Write(buf[:])
	}
	return b.String()
}

// Insert adds a tuple; it reports whether the tuple was new. The number of
// values must match the arity.
func (r *Relation) Insert(vals ...int64) bool {
	if len(vals) != len(r.schema) {
		panic(fmt.Sprintf("relation: inserting %d values into arity-%d relation", len(vals), len(r.schema)))
	}
	t := Tuple(vals).Clone()
	k := key(t)
	if _, dup := r.seen[k]; dup {
		return false
	}
	r.seen[k] = struct{}{}
	r.tuples = append(r.tuples, t)
	return true
}

// Has reports whether the tuple is present.
func (r *Relation) Has(vals ...int64) bool {
	if len(vals) != len(r.schema) {
		return false
	}
	_, ok := r.seen[key(vals)]
	return ok
}

// Each calls fn for every tuple in insertion order. The callback must not
// mutate the tuple.
func (r *Relation) Each(fn func(Tuple)) {
	for _, t := range r.tuples {
		fn(t)
	}
}

// Tuples returns a copy of all tuples in insertion order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, len(r.tuples))
	for i, t := range r.tuples {
		out[i] = t.Clone()
	}
	return out
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := New(r.schema...)
	for _, t := range r.tuples {
		c.Insert(t...)
	}
	return c
}

// Value returns tuple t's value for attribute a.
func (r *Relation) Value(t Tuple, a string) int64 { return t[r.AttrPos(a)] }

// Project returns Π_attrs(R), eliminating duplicates.
func (r *Relation) Project(attrs ...string) *Relation {
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		pos[i] = r.AttrPos(a)
	}
	out := New(attrs...)
	row := make([]int64, len(attrs))
	for _, t := range r.tuples {
		for i, p := range pos {
			row[i] = t[p]
		}
		out.Insert(row...)
	}
	return out
}

// Select returns σ_pred(R).
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.schema...)
	for _, t := range r.tuples {
		if pred(t) {
			out.Insert(t...)
		}
	}
	return out
}

// SelectEq returns σ_{a=v}(R).
func (r *Relation) SelectEq(a string, v int64) *Relation {
	p := r.AttrPos(a)
	return r.Select(func(t Tuple) bool { return t[p] == v })
}

// CommonAttrs returns the attributes shared with s, in r's schema order.
func (r *Relation) CommonAttrs(s *Relation) []string {
	var common []string
	for _, a := range r.schema {
		if s.HasAttr(a) {
			common = append(common, a)
		}
	}
	return common
}

// joinSchema returns r's schema followed by s's attributes not in r.
func joinSchema(r, s *Relation) []string {
	out := append([]string(nil), r.schema...)
	for _, a := range s.schema {
		if !r.HasAttr(a) {
			out = append(out, a)
		}
	}
	return out
}

// NaturalJoin returns R ⋈ S on their common attributes (the cartesian
// product when there are none). The output schema is r's schema followed
// by s's remaining attributes.
func (r *Relation) NaturalJoin(s *Relation) *Relation {
	common := r.CommonAttrs(s)
	out := New(joinSchema(r, s)...)

	sCommonPos := make([]int, len(common))
	rCommonPos := make([]int, len(common))
	for i, a := range common {
		sCommonPos[i] = s.AttrPos(a)
		rCommonPos[i] = r.AttrPos(a)
	}
	var sExtraPos []int
	for _, a := range s.schema {
		if !r.HasAttr(a) {
			sExtraPos = append(sExtraPos, s.AttrPos(a))
		}
	}

	// Hash s on the common attributes.
	buckets := make(map[string][]Tuple)
	kbuf := make(Tuple, len(common))
	for _, st := range s.tuples {
		for i, p := range sCommonPos {
			kbuf[i] = st[p]
		}
		k := key(kbuf)
		buckets[k] = append(buckets[k], st)
	}

	row := make([]int64, len(out.schema))
	for _, rt := range r.tuples {
		for i, p := range rCommonPos {
			kbuf[i] = rt[p]
		}
		for _, st := range buckets[key(kbuf)] {
			copy(row, rt)
			for i, p := range sExtraPos {
				row[len(rt)+i] = st[p]
			}
			out.Insert(row...)
		}
	}
	return out
}

// SemiJoin returns R ⋉ S: the tuples of R that join with at least one
// tuple of S on their common attributes.
func (r *Relation) SemiJoin(s *Relation) *Relation {
	common := r.CommonAttrs(s)
	if len(common) == 0 {
		if s.Len() == 0 {
			return New(r.schema...)
		}
		return r.Clone()
	}
	proj := s.Project(common...)
	rPos := make([]int, len(common))
	for i, a := range common {
		rPos[i] = r.AttrPos(a)
	}
	out := New(r.schema...)
	kbuf := make(Tuple, len(common))
	for _, t := range r.tuples {
		for i, p := range rPos {
			kbuf[i] = t[p]
		}
		if proj.Has(kbuf...) {
			out.Insert(t...)
		}
	}
	return out
}

// Union returns R ∪ S. The schemas must contain the same attribute set;
// s's tuples are reordered to r's schema if needed.
func (r *Relation) Union(s *Relation) *Relation {
	perm := schemaPerm(r, s)
	out := r.Clone()
	row := make([]int64, len(r.schema))
	for _, t := range s.tuples {
		for i, p := range perm {
			row[i] = t[p]
		}
		out.Insert(row...)
	}
	return out
}

// schemaPerm returns, for each attribute of r's schema, its position in
// s's schema; it panics if the attribute sets differ.
func schemaPerm(r, s *Relation) []int {
	if len(r.schema) != len(s.schema) {
		panic(fmt.Sprintf("relation: schema mismatch %v vs %v", r.schema, s.schema))
	}
	perm := make([]int, len(r.schema))
	for i, a := range r.schema {
		perm[i] = s.AttrPos(a)
	}
	return perm
}

// Rename returns a copy with attributes renamed according to m; attributes
// not in m keep their name.
func (r *Relation) Rename(m map[string]string) *Relation {
	schema := make([]string, len(r.schema))
	for i, a := range r.schema {
		if n, ok := m[a]; ok {
			schema[i] = n
		} else {
			schema[i] = a
		}
	}
	out := New(schema...)
	for _, t := range r.tuples {
		out.Insert(t...)
	}
	return out
}

// Sorted returns a copy whose insertion order is sorted lexicographically
// by the given attributes (then by the remaining attributes to break ties
// deterministically).
func (r *Relation) Sorted(by ...string) *Relation {
	pos := make([]int, 0, len(r.schema))
	for _, a := range by {
		pos = append(pos, r.AttrPos(a))
	}
	for i := range r.schema {
		pos = append(pos, i)
	}
	ts := make([]Tuple, len(r.tuples))
	copy(ts, r.tuples)
	sort.SliceStable(ts, func(i, j int) bool {
		for _, p := range pos {
			if ts[i][p] != ts[j][p] {
				return ts[i][p] < ts[j][p]
			}
		}
		return false
	})
	out := New(r.schema...)
	for _, t := range ts {
		out.Insert(t...)
	}
	return out
}

// OrderAttr is the name of the position column added by Order (the
// paper's τ_F operator).
const OrderAttr = "order"

// Order implements the paper's ordering operator τ_F(R): it returns R
// extended with an OrderAttr column holding the 1-based position of each
// tuple after sorting by attributes by (ties broken deterministically by
// the remaining attributes).
func (r *Relation) Order(by ...string) *Relation {
	if r.HasAttr(OrderAttr) {
		panic("relation: Order on relation that already has an order column")
	}
	sorted := r.Sorted(by...)
	out := New(append(sorted.Schema(), OrderAttr)...)
	row := make([]int64, len(r.schema)+1)
	i := int64(0)
	sorted.Each(func(t Tuple) {
		i++
		copy(row, t)
		row[len(t)] = i
		out.Insert(row...)
	})
	return out
}

// AggKind enumerates the group-by aggregates of the paper's Π_{F,agg(A)}.
type AggKind int

// Supported aggregation kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

// String returns the SQL-ish name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// Aggregate implements Π_{group, agg(over)}(R): it partitions R by the
// group attributes and aggregates attribute over within each group. The
// output schema is group + out (the aggregate column name). For AggCount,
// over is ignored and may be empty.
func (r *Relation) Aggregate(group []string, agg AggKind, over, out string) *Relation {
	gpos := make([]int, len(group))
	for i, a := range group {
		gpos[i] = r.AttrPos(a)
	}
	opos := -1
	if agg != AggCount {
		opos = r.AttrPos(over)
	}

	type acc struct {
		g Tuple
		v int64
		n int64
	}
	accs := make(map[string]*acc)
	var order []string
	kbuf := make(Tuple, len(group))
	for _, t := range r.tuples {
		for i, p := range gpos {
			kbuf[i] = t[p]
		}
		k := key(kbuf)
		a, ok := accs[k]
		if !ok {
			a = &acc{g: kbuf.Clone()}
			switch agg {
			case AggMin:
				a.v = int64(^uint64(0) >> 1) // MaxInt64
			case AggMax:
				a.v = -int64(^uint64(0)>>1) - 1 // MinInt64
			}
			accs[k] = a
			order = append(order, k)
		}
		a.n++
		switch agg {
		case AggSum:
			a.v += t[opos]
		case AggMin:
			if t[opos] < a.v {
				a.v = t[opos]
			}
		case AggMax:
			if t[opos] > a.v {
				a.v = t[opos]
			}
		}
	}

	res := New(append(append([]string(nil), group...), out)...)
	row := make([]int64, len(group)+1)
	for _, k := range order {
		a := accs[k]
		copy(row, a.g)
		if agg == AggCount {
			row[len(group)] = a.n
		} else {
			row[len(group)] = a.v
		}
		res.Insert(row...)
	}
	return res
}

// GroupCount is shorthand for Aggregate(group, AggCount, "", "count").
func (r *Relation) GroupCount(group ...string) *Relation {
	return r.Aggregate(group, AggCount, "", "count")
}

// Degree returns deg_R(X) = max_t |σ_{X=t}(R)|: the maximum number of
// tuples sharing one value combination on attributes X. Degree of the
// empty set is |R|.
func (r *Relation) Degree(x ...string) int {
	if len(x) == 0 {
		return r.Len()
	}
	pos := make([]int, len(x))
	for i, a := range x {
		pos[i] = r.AttrPos(a)
	}
	counts := make(map[string]int)
	maxd := 0
	kbuf := make(Tuple, len(x))
	for _, t := range r.tuples {
		for i, p := range pos {
			kbuf[i] = t[p]
		}
		k := key(kbuf)
		counts[k]++
		if counts[k] > maxd {
			maxd = counts[k]
		}
	}
	return maxd
}

// Equal reports whether r and s contain the same set of tuples over the
// same attribute set (schema order may differ).
func (r *Relation) Equal(s *Relation) bool {
	if len(r.schema) != len(s.schema) || r.Len() != s.Len() {
		return false
	}
	for _, a := range r.schema {
		if !s.HasAttr(a) {
			return false
		}
	}
	row := make([]int64, len(r.schema))
	for _, t := range s.tuples {
		// Reorder s's tuple into r's schema order and check membership.
		for i, a := range r.schema {
			row[i] = t[s.AttrPos(a)]
		}
		if !r.Has(row...) {
			return false
		}
	}
	return true
}

// String renders the relation deterministically (sorted), for tests and
// debugging.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v{", r.schema)
	sorted := r.Sorted(r.schema...)
	first := true
	sorted.Each(func(t Tuple) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%v", []int64(t))
	})
	b.WriteString("}")
	return b.String()
}
