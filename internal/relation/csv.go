package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV reads a relation from CSV: the first record is the header
// (attribute names), every following record one tuple of int64 values.
// Duplicate tuples collapse (set semantics).
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	rel := New(header...)
	row := make([]int64, len(header))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: CSV line %d has %d fields, want %d", line, len(rec), len(header))
		}
		for i, f := range rec {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d field %d: %w", line, i+1, err)
			}
			row[i] = v
		}
		rel.Insert(row...)
	}
}

// WriteCSV writes the relation as CSV (header + one record per tuple,
// in deterministic sorted order).
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.schema); err != nil {
		return err
	}
	rec := make([]string, len(r.schema))
	var werr error
	r.Sorted(r.schema...).Each(func(t Tuple) {
		if werr != nil {
			return
		}
		for i, v := range t {
			rec[i] = strconv.FormatInt(v, 10)
		}
		werr = cw.Write(rec)
	})
	if werr != nil {
		return werr
	}
	cw.Flush()
	return cw.Error()
}
