package relation

import (
	"math/rand"
	"sort"
	"testing"
)

func TestIndexLookupAndCount(t *testing.T) {
	r := FromTuples([]string{"A", "B"},
		Tuple{1, 10}, Tuple{1, 20}, Tuple{2, 10}, Tuple{3, 30})
	idx := r.BuildIndex("A")
	if got := idx.Count([]int64{1}); got != 2 {
		t.Fatalf("Count(1) = %d", got)
	}
	if got := idx.Count([]int64{9}); got != 0 {
		t.Fatalf("Count(9) = %d", got)
	}
	var bs []int64
	idx.Lookup([]int64{1}, func(tp Tuple) { bs = append(bs, tp[1]) })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	if len(bs) != 2 || bs[0] != 10 || bs[1] != 20 {
		t.Fatalf("Lookup(1) = %v", bs)
	}
	if got := idx.Attrs(); len(got) != 1 || got[0] != "A" {
		t.Fatalf("Attrs = %v", got)
	}
}

func TestIndexMultiAttr(t *testing.T) {
	r := FromTuples([]string{"A", "B", "C"},
		Tuple{1, 10, 7}, Tuple{1, 10, 8}, Tuple{1, 20, 9})
	idx := r.BuildIndex("A", "B")
	if idx.Count([]int64{1, 10}) != 2 || idx.Count([]int64{1, 20}) != 1 {
		t.Fatal("multi-attr counts wrong")
	}
	if idx.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d", idx.MaxDegree())
	}
}

func TestIndexMatchesDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := New("A", "B")
	for r.Len() < 60 {
		r.Insert(int64(rng.Intn(8)), int64(rng.Intn(8)))
	}
	idx := r.BuildIndex("A")
	if idx.MaxDegree() != r.Degree("A") {
		t.Fatalf("index degree %d vs relation degree %d", idx.MaxDegree(), r.Degree("A"))
	}
	// Distinct enumerates exactly the projection with multiplicities.
	proj := r.Project("A")
	seen := 0
	idx.Distinct(func(vals []int64, count int) {
		seen++
		if !proj.Has(vals[0]) {
			t.Fatalf("Distinct produced absent value %d", vals[0])
		}
		if count != idx.Count(vals) {
			t.Fatal("Distinct count mismatch")
		}
	})
	if seen != proj.Len() {
		t.Fatalf("Distinct count %d vs projection %d", seen, proj.Len())
	}
}

func TestIndexIsSnapshot(t *testing.T) {
	r := FromTuples([]string{"A"}, Tuple{1})
	idx := r.BuildIndex("A")
	r.Insert(2)
	if idx.Count([]int64{2}) != 0 {
		t.Fatal("index saw post-build insert")
	}
}

func BenchmarkIndexedLookupVsScan(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	r := New("A", "B")
	for r.Len() < 5000 {
		r.Insert(int64(rng.Intn(500)), int64(rng.Intn(500)))
	}
	b.Run("scan-selecteq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.SelectEq("A", int64(i%500))
		}
	})
	b.Run("index-lookup", func(b *testing.B) {
		idx := r.BuildIndex("A")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx.Lookup([]int64{int64(i % 500)}, func(Tuple) {})
		}
	})
}
