package relation

import (
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	r := FromTuples([]string{"A", "B"},
		Tuple{3, -4}, Tuple{1, 2}, Tuple{1, 2}) // duplicate collapses
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Fatalf("round trip: %v vs %v", got, r)
	}
	// Deterministic sorted output.
	want := "A,B\n1,2\n3,-4\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",             // no header
		"A,B\n1\n",     // wrong arity
		"A,B\n1,x\n",   // non-integer
		"A,B\n1,2,3\n", // too many fields
	}
	for i, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
}

func TestReadCSVEmptyRelation(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("A,B\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Arity() != 2 {
		t.Fatalf("got %v", got)
	}
}
