package relation

import (
	"encoding/binary"
)

// Index is a hash index over a subset of a relation's attributes: it
// maps each value combination to the tuples carrying it. Worst-case
// optimal join algorithms probe such indexes once per candidate
// extension, so lookups must be O(1) in the tuple count.
type Index struct {
	rel   *Relation
	attrs []string
	pos   []int
	rows  map[string][]int // value key -> tuple ordinals
}

// BuildIndex indexes the relation on the given attributes. The index is
// a snapshot: tuples inserted afterwards are not visible.
func (r *Relation) BuildIndex(attrs ...string) *Index {
	idx := &Index{
		rel:   r,
		attrs: append([]string(nil), attrs...),
		pos:   make([]int, len(attrs)),
		rows:  make(map[string][]int),
	}
	for i, a := range attrs {
		idx.pos[i] = r.AttrPos(a)
	}
	kbuf := make(Tuple, len(attrs))
	for i, t := range r.tuples {
		for j, p := range idx.pos {
			kbuf[j] = t[p]
		}
		k := key(kbuf)
		idx.rows[k] = append(idx.rows[k], i)
	}
	return idx
}

// Attrs returns the indexed attributes.
func (i *Index) Attrs() []string { return append([]string(nil), i.attrs...) }

// Lookup calls fn for every tuple whose indexed attributes equal vals
// (in index attribute order). fn must not mutate the tuple.
func (i *Index) Lookup(vals []int64, fn func(Tuple)) {
	for _, ord := range i.rows[key(vals)] {
		fn(i.rel.tuples[ord])
	}
}

// Count returns the number of tuples matching vals — deg queries in
// O(1).
func (i *Index) Count(vals []int64) int { return len(i.rows[key(vals)]) }

// Distinct calls fn once per distinct value combination present,
// together with its multiplicity, in unspecified order.
func (i *Index) Distinct(fn func(vals []int64, count int)) {
	for k, ords := range i.rows {
		fn(decodeKey(k), len(ords))
	}
}

// MaxDegree returns max over value combinations of the matching tuple
// count (deg_attrs(R) via the index).
func (i *Index) MaxDegree() int {
	maxd := 0
	for _, ords := range i.rows {
		if len(ords) > maxd {
			maxd = len(ords)
		}
	}
	return maxd
}

// decodeKey inverts the 8-byte-per-value key encoding.
func decodeKey(k string) []int64 {
	out := make([]int64, len(k)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64([]byte(k[i*8 : i*8+8])))
	}
	return out
}
