package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func rel(t *testing.T, schema []string, rows ...[]int64) *Relation {
	t.Helper()
	r := New(schema...)
	for _, row := range rows {
		r.Insert(row...)
	}
	return r
}

func TestInsertDedup(t *testing.T) {
	r := New("A", "B")
	if !r.Insert(1, 2) {
		t.Fatal("first insert reported duplicate")
	}
	if r.Insert(1, 2) {
		t.Fatal("duplicate insert reported new")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if !r.Has(1, 2) || r.Has(2, 1) {
		t.Fatal("Has gives wrong membership")
	}
}

func TestInsertArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	New("A").Insert(1, 2)
}

func TestDuplicateAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate attribute")
		}
	}()
	New("A", "A")
}

func TestProject(t *testing.T) {
	r := rel(t, []string{"A", "B"}, []int64{1, 10}, []int64{1, 20}, []int64{2, 10})
	p := r.Project("A")
	if p.Len() != 2 || !p.Has(1) || !p.Has(2) {
		t.Fatalf("Project(A) = %v", p)
	}
	// Projection onto both attrs in swapped order.
	q := r.Project("B", "A")
	if q.Len() != 3 || !q.Has(10, 1) || !q.Has(20, 1) || !q.Has(10, 2) {
		t.Fatalf("Project(B,A) = %v", q)
	}
}

func TestSelect(t *testing.T) {
	r := rel(t, []string{"A", "B"}, []int64{1, 10}, []int64{2, 20})
	s := r.SelectEq("A", 1)
	if s.Len() != 1 || !s.Has(1, 10) {
		t.Fatalf("SelectEq = %v", s)
	}
}

func TestNaturalJoinBasic(t *testing.T) {
	r := rel(t, []string{"A", "B"}, []int64{1, 10}, []int64{2, 10}, []int64{3, 30})
	s := rel(t, []string{"B", "C"}, []int64{10, 100}, []int64{10, 200}, []int64{40, 400})
	j := r.NaturalJoin(s)
	want := rel(t, []string{"A", "B", "C"},
		[]int64{1, 10, 100}, []int64{1, 10, 200},
		[]int64{2, 10, 100}, []int64{2, 10, 200})
	if !j.Equal(want) {
		t.Fatalf("join = %v, want %v", j, want)
	}
}

func TestNaturalJoinNoCommonIsProduct(t *testing.T) {
	r := rel(t, []string{"A"}, []int64{1}, []int64{2})
	s := rel(t, []string{"B"}, []int64{10})
	j := r.NaturalJoin(s)
	if j.Len() != 2 || !j.Has(1, 10) || !j.Has(2, 10) {
		t.Fatalf("product = %v", j)
	}
}

func TestSemiJoin(t *testing.T) {
	r := rel(t, []string{"A", "B"}, []int64{1, 10}, []int64{2, 20}, []int64{3, 30})
	s := rel(t, []string{"B", "C"}, []int64{10, 1}, []int64{30, 9})
	sj := r.SemiJoin(s)
	want := rel(t, []string{"A", "B"}, []int64{1, 10}, []int64{3, 30})
	if !sj.Equal(want) {
		t.Fatalf("semijoin = %v, want %v", sj, want)
	}
}

func TestSemiJoinNoCommon(t *testing.T) {
	r := rel(t, []string{"A"}, []int64{1})
	empty := New("B")
	if got := r.SemiJoin(empty); got.Len() != 0 {
		t.Fatalf("semijoin with empty disjoint relation = %v, want empty", got)
	}
	s := rel(t, []string{"B"}, []int64{5})
	if got := r.SemiJoin(s); !got.Equal(r) {
		t.Fatalf("semijoin with nonempty disjoint relation = %v, want %v", got, r)
	}
}

func TestUnionReordersSchema(t *testing.T) {
	r := rel(t, []string{"A", "B"}, []int64{1, 10})
	s := rel(t, []string{"B", "A"}, []int64{10, 1}, []int64{20, 2})
	u := r.Union(s)
	want := rel(t, []string{"A", "B"}, []int64{1, 10}, []int64{2, 20})
	if !u.Equal(want) {
		t.Fatalf("union = %v, want %v", u, want)
	}
}

func TestRename(t *testing.T) {
	r := rel(t, []string{"A", "B"}, []int64{1, 2})
	n := r.Rename(map[string]string{"B": "C"})
	if !n.HasAttr("C") || n.HasAttr("B") || !n.Has(1, 2) {
		t.Fatalf("rename = %v", n)
	}
}

func TestSortedAndOrder(t *testing.T) {
	r := rel(t, []string{"A", "B"},
		[]int64{2, 1}, []int64{1, 2}, []int64{1, 1})
	s := r.Sorted("A")
	got := s.Tuples()
	wantOrder := []Tuple{{1, 1}, {1, 2}, {2, 1}}
	for i, w := range wantOrder {
		if got[i][0] != w[0] || got[i][1] != w[1] {
			t.Fatalf("Sorted order[%d] = %v, want %v", i, got[i], w)
		}
	}

	o := r.Order("A")
	if !o.HasAttr(OrderAttr) {
		t.Fatal("Order did not add order column")
	}
	if !o.Has(1, 1, 1) || !o.Has(1, 2, 2) || !o.Has(2, 1, 3) {
		t.Fatalf("Order = %v", o)
	}
}

func TestOrderTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double Order")
		}
	}()
	rel(t, []string{"A"}, []int64{1}).Order("A").Order("A")
}

func TestAggregates(t *testing.T) {
	r := rel(t, []string{"A", "B"},
		[]int64{1, 5}, []int64{1, 7}, []int64{2, 3})
	cnt := r.GroupCount("A")
	if !cnt.Has(1, 2) || !cnt.Has(2, 1) || cnt.Len() != 2 {
		t.Fatalf("count = %v", cnt)
	}
	sum := r.Aggregate([]string{"A"}, AggSum, "B", "s")
	if !sum.Has(1, 12) || !sum.Has(2, 3) {
		t.Fatalf("sum = %v", sum)
	}
	mn := r.Aggregate([]string{"A"}, AggMin, "B", "m")
	if !mn.Has(1, 5) || !mn.Has(2, 3) {
		t.Fatalf("min = %v", mn)
	}
	mx := r.Aggregate([]string{"A"}, AggMax, "B", "m")
	if !mx.Has(1, 7) || !mx.Has(2, 3) {
		t.Fatalf("max = %v", mx)
	}
}

func TestAggregateEmptyGroup(t *testing.T) {
	r := rel(t, []string{"A"}, []int64{1}, []int64{2}, []int64{3})
	c := r.Aggregate(nil, AggCount, "", "count")
	if c.Len() != 1 || !c.Has(3) {
		t.Fatalf("global count = %v", c)
	}
}

func TestDegree(t *testing.T) {
	r := rel(t, []string{"A", "B"},
		[]int64{1, 1}, []int64{1, 2}, []int64{1, 3}, []int64{2, 1})
	if d := r.Degree("A"); d != 3 {
		t.Fatalf("deg(A) = %d, want 3", d)
	}
	if d := r.Degree("B"); d != 2 {
		t.Fatalf("deg(B) = %d, want 2", d)
	}
	if d := r.Degree(); d != 4 {
		t.Fatalf("deg(∅) = %d, want |R| = 4", d)
	}
	if d := r.Degree("A", "B"); d != 1 {
		t.Fatalf("deg(A,B) = %d, want 1", d)
	}
}

func TestEqualIgnoresSchemaOrder(t *testing.T) {
	r := rel(t, []string{"A", "B"}, []int64{1, 2})
	s := rel(t, []string{"B", "A"}, []int64{2, 1})
	if !r.Equal(s) {
		t.Fatal("Equal should ignore attribute order")
	}
	s2 := rel(t, []string{"B", "A"}, []int64{1, 2})
	if r.Equal(s2) {
		t.Fatal("Equal matched different tuples")
	}
}

func TestAggKindString(t *testing.T) {
	names := map[AggKind]string{AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("AggKind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// randomRel builds a random relation over schema with values in [0, dom).
func randomRel(rng *rand.Rand, schema []string, n, dom int) *Relation {
	r := New(schema...)
	for i := 0; i < n; i++ {
		row := make([]int64, len(schema))
		for j := range row {
			row[j] = int64(rng.Intn(dom))
		}
		r.Insert(row...)
	}
	return r
}

// TestJoinAgainstNestedLoop cross-checks the hash join against a nested
// loop reference on random instances.
func TestJoinAgainstNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		r := randomRel(rng, []string{"A", "B"}, 20, 5)
		s := randomRel(rng, []string{"B", "C"}, 20, 5)
		j := r.NaturalJoin(s)

		want := New("A", "B", "C")
		r.Each(func(rt Tuple) {
			s.Each(func(st Tuple) {
				if rt[1] == st[0] {
					want.Insert(rt[0], rt[1], st[1])
				}
			})
		})
		if !j.Equal(want) {
			t.Fatalf("iter %d: join mismatch:\n got %v\nwant %v", iter, j, want)
		}
	}
}

// Property: |R ⋈ S| ≤ |R| · deg_S(common) (the degree-bounded join size
// bound that the circuit constructions rely on).
func TestJoinSizeDegreeBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed ^ rng.Int63()))
		r := randomRel(local, []string{"A", "B"}, 30, 6)
		s := randomRel(local, []string{"B", "C"}, 30, 6)
		j := r.NaturalJoin(s)
		return j.Len() <= r.Len()*s.Degree("B")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: projection never increases cardinality and is idempotent.
func TestProjectionProperties(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		r := randomRel(local, []string{"A", "B", "C"}, 40, 4)
		p := r.Project("A", "B")
		return p.Len() <= r.Len() && p.Project("A", "B").Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: semijoin is the projection of the join onto R's schema.
func TestSemiJoinIsJoinProjection(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		r := randomRel(local, []string{"A", "B"}, 25, 5)
		s := randomRel(local, []string{"B", "C"}, 25, 5)
		return r.SemiJoin(s).Equal(r.NaturalJoin(s).Project("A", "B"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative and idempotent (set semantics).
func TestUnionProperties(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		r := randomRel(local, []string{"A", "B"}, 20, 5)
		s := randomRel(local, []string{"A", "B"}, 20, 5)
		u1 := r.Union(s)
		u2 := s.Union(r)
		return u1.Equal(u2) && u1.Union(r).Equal(u1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := rel(t, []string{"A"}, []int64{1})
	c := r.Clone()
	c.Insert(2)
	if r.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not deep: r=%v c=%v", r, c)
	}
}

func TestStringDeterministic(t *testing.T) {
	r := rel(t, []string{"A", "B"}, []int64{2, 1}, []int64{1, 2})
	want := "[A B]{[1 2], [2 1]}"
	if r.String() != want {
		t.Fatalf("String = %q, want %q", r.String(), want)
	}
}
