// Package mpcsim executes a Boolean circuit under a simulated two-party
// GMW protocol [18] — the secure-computation deployment of Section 1
// made concrete. Each wire is XOR-secret-shared between party 0 and
// party 1; XOR and NOT are evaluated locally; AND gates consume a Beaver
// triple from a trusted dealer and cost one opening (d = x⊕a, e = y⊕b)
// each, with all AND gates of one circuit level sharing a communication
// round. OR gates are rewritten by De Morgan.
//
// The simulation is honest-but-curious and the cryptography (OT for
// triple generation) is out of scope — substituted by the dealer, as
// DESIGN.md documents. What the package *does* establish, and the tests
// check, is the structural security property circuits buy: the protocol
// transcript's shape (which wires are opened, in which rounds, how many
// bits flow) is identical for every input, and each party's view is
// masked by fresh random triples.
package mpcsim

import (
	"fmt"
	"math/rand"

	"circuitql/internal/boolcircuit"
)

// Transcript records what an observer of the protocol sees.
type Transcript struct {
	ANDGates int64 // triples consumed
	BitsSent int64 // total bits exchanged in openings (4 per AND)
	Rounds   int   // communication rounds = multiplicative depth
	// Openings is the flattened sequence of opened masked bits (d, e per
	// AND gate in gate order). Its values are masked by the dealer's
	// randomness; its LENGTH and position structure are input
	// independent, which TestTranscriptShapeIsOblivious verifies.
	Openings []byte
}

// Run executes the circuit on the given input bits under 2-party GMW.
// owner[i] says which party holds input bit i (it contributes the real
// bit XOR a random mask as the other party's share). The dealer's and
// the sharing randomness derive from seed. Returns the reconstructed
// output bits and the transcript.
//
// The circuit must be Boolean — every wire 0/1, gates among
// INPUT/CONST/AND/OR/XOR — which is what bitblast.Blast produces.
func Run(c *boolcircuit.Circuit, inputs []int64, owner []int, seed int64) ([]int64, Transcript, error) {
	if len(inputs) != c.NumInputs() {
		return nil, Transcript{}, fmt.Errorf("mpcsim: got %d inputs, want %d", len(inputs), c.NumInputs())
	}
	if len(owner) != len(inputs) {
		return nil, Transcript{}, fmt.Errorf("mpcsim: got %d owners, want %d", len(owner), len(inputs))
	}
	dealer := rand.New(rand.NewSource(seed))

	type share struct{ s0, s1 byte }
	shares := make([]share, c.Size())
	andDepth := make([]int, c.Size())
	var tr Transcript

	nextInput := 0
	for id := 0; id < c.Size(); id++ {
		g := c.GateAt(id)
		switch g.Op {
		case boolcircuit.OpInput:
			bit := byte(inputs[nextInput] & 1)
			if inputs[nextInput] != 0 && inputs[nextInput] != 1 {
				return nil, Transcript{}, fmt.Errorf("mpcsim: input %d is not a bit", nextInput)
			}
			mask := byte(dealer.Intn(2))
			if owner[nextInput] == 0 {
				shares[id] = share{s0: bit ^ mask, s1: mask}
			} else {
				shares[id] = share{s0: mask, s1: bit ^ mask}
			}
			nextInput++
		case boolcircuit.OpConst:
			if g.K != 0 && g.K != 1 {
				return nil, Transcript{}, fmt.Errorf("mpcsim: non-boolean constant %d", g.K)
			}
			shares[id] = share{s0: byte(g.K), s1: 0}
		case boolcircuit.OpXor:
			a, b := shares[g.A], shares[g.B]
			shares[id] = share{s0: a.s0 ^ b.s0, s1: a.s1 ^ b.s1}
			andDepth[id] = maxInt(andDepth[g.A], andDepth[g.B])
		case boolcircuit.OpAnd, boolcircuit.OpOr:
			x, y := shares[g.A], shares[g.B]
			if g.Op == boolcircuit.OpOr {
				// x ∨ y = ¬(¬x ∧ ¬y); NOT flips party 0's share.
				x.s0 ^= 1
				y.s0 ^= 1
			}
			// Beaver triple (a, b, ab), each value XOR-shared.
			ta, tb := byte(dealer.Intn(2)), byte(dealer.Intn(2))
			tc := ta & tb
			a0, b0, c0 := byte(dealer.Intn(2)), byte(dealer.Intn(2)), byte(dealer.Intn(2))
			a1, b1, c1 := ta^a0, tb^b0, tc^c0
			// Each party opens its shares of d = x⊕a and e = y⊕b.
			d0, e0 := x.s0^a0, y.s0^b0
			d1, e1 := x.s1^a1, y.s1^b1
			d, e := d0^d1, e0^e1
			tr.Openings = append(tr.Openings, d0, e0, d1, e1)
			tr.BitsSent += 4
			tr.ANDGates++
			// z = c ⊕ d·b ⊕ e·a ⊕ d·e (the constant d·e goes to party 0).
			z0 := c0 ^ d&b0 ^ e&a0 ^ d&e
			z1 := c1 ^ d&b1 ^ e&a1
			if g.Op == boolcircuit.OpOr {
				z0 ^= 1 // final negation of De Morgan
			}
			shares[id] = share{s0: z0, s1: z1}
			andDepth[id] = maxInt(andDepth[g.A], andDepth[g.B]) + 1
		default:
			return nil, Transcript{}, fmt.Errorf("mpcsim: gate %d has non-boolean op %v (bit-blast first)", id, g.Op)
		}
		if d := andDepth[id]; d > tr.Rounds {
			tr.Rounds = d
		}
	}

	outs := c.Outputs()
	result := make([]int64, len(outs))
	for i, o := range outs {
		result[i] = int64(shares[o].s0 ^ shares[o].s1)
	}
	return result, tr, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
