package mpcsim

import (
	"math/rand"
	"testing"

	"circuitql/internal/bitblast"
	"circuitql/internal/boolcircuit"
	"circuitql/internal/opcircuits"
	"circuitql/internal/relation"
)

// runBlasted bit-blasts a word circuit and executes it under 2PC,
// returning the reconstructed word outputs.
func runBlasted(t *testing.T, c *boolcircuit.Circuit, width int, inputs []int64, seed int64) ([]int64, Transcript) {
	t.Helper()
	res, err := bitblast.Blast(c, width)
	if err != nil {
		t.Fatal(err)
	}
	bits := bitblast.PackWords(inputs, width)
	owner := make([]int, len(bits))
	for i := range owner {
		owner[i] = i % 2 // interleaved ownership
	}
	out, tr, err := Run(res.C, bits, owner, seed)
	if err != nil {
		t.Fatal(err)
	}
	return bitblast.UnpackWords(out, width), tr
}

func TestGMWMatchesPlainEvaluation(t *testing.T) {
	c := boolcircuit.New()
	a, b := c.Input(), c.Input()
	c.MarkOutput(c.Add(a, b))
	c.MarkOutput(c.Lt(a, b))
	c.MarkOutput(c.Mux(c.Eq(a, b), a, c.Mul(a, b)))

	rng := rand.New(rand.NewSource(801))
	for iter := 0; iter < 20; iter++ {
		inputs := []int64{int64(rng.Intn(200) - 100), int64(rng.Intn(200) - 100)}
		want, err := c.Evaluate(inputs)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := runBlasted(t, c, 16, inputs, int64(iter))
		for i := range want {
			w := want[i]
			// 16-bit truncation of the plain result.
			w = int64(int16(w))
			if got[i] != w {
				t.Fatalf("iter %d output %d: 2PC %d ≠ plain %d", iter, i, got[i], w)
			}
		}
	}
}

// TestGMWJoinQuery: a private primary-key join under simulated 2PC —
// party 0 holds R, party 1 holds S (per-relation ownership).
func TestGMWJoinQuery(t *testing.T) {
	c := boolcircuit.New()
	r := opcircuits.NewInput(c, []string{"A", "B"}, 3)
	s := opcircuits.NewInput(c, []string{"B", "C"}, 2)
	out := opcircuits.PKJoin(c, r, s)
	opcircuits.MarkOutputs(c, out)

	rr := relation.FromTuples([]string{"A", "B"},
		relation.Tuple{1, 1}, relation.Tuple{1, 2}, relation.Tuple{2, 1})
	ss := relation.FromTuples([]string{"B", "C"},
		relation.Tuple{1, 100}, relation.Tuple{3, 100})
	pr, err := opcircuits.Pack(rr, []string{"A", "B"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := opcircuits.Pack(ss, []string{"B", "C"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	inputs := append(pr, ps...)

	res, err := bitblast.Blast(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	bits := bitblast.PackWords(inputs, 64)
	owner := make([]int, len(bits))
	for i := range owner {
		if i >= len(pr)*64 {
			owner[i] = 1 // party 1 owns S's bits
		}
	}
	outBits, tr, err := Run(res.C, bits, owner, 99)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := opcircuits.Decode(out.Schema, bitblast.UnpackWords(outBits, 64))
	if err != nil {
		t.Fatal(err)
	}
	want := rr.NaturalJoin(ss)
	if !rel.Equal(want) {
		t.Fatalf("2PC join = %v, want %v", rel, want)
	}
	if tr.ANDGates == 0 || tr.Rounds == 0 {
		t.Fatalf("transcript empty: %+v", tr)
	}
	t.Logf("2PC pk-join: %d AND triples, %d rounds, %d bits exchanged",
		tr.ANDGates, tr.Rounds, tr.BitsSent)
}

// TestTranscriptShapeIsOblivious: the number of openings, rounds, and
// AND gates is identical for every input — the access-pattern property
// circuits guarantee.
func TestTranscriptShapeIsOblivious(t *testing.T) {
	c := boolcircuit.New()
	a, b := c.Input(), c.Input()
	c.MarkOutput(c.Mux(c.Lt(a, b), c.Mul(a, b), c.Add(a, b)))
	res, err := bitblast.Blast(c, 16)
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int, res.C.NumInputs())
	for i := range owner {
		owner[i] = i % 2
	}
	var ref Transcript
	rng := rand.New(rand.NewSource(803))
	for iter := 0; iter < 10; iter++ {
		inputs := bitblast.PackWords([]int64{int64(rng.Intn(1000)), int64(rng.Intn(1000))}, 16)
		_, tr, err := Run(res.C, inputs, owner, 7) // same dealer seed
		if err != nil {
			t.Fatal(err)
		}
		if iter == 0 {
			ref = tr
			continue
		}
		if tr.ANDGates != ref.ANDGates || tr.Rounds != ref.Rounds ||
			tr.BitsSent != ref.BitsSent || len(tr.Openings) != len(ref.Openings) {
			t.Fatalf("transcript shape varies with input: %+v vs %+v", tr, ref)
		}
	}
}

// TestOpeningsAreMasked: with fresh dealer randomness, the opened values
// for fixed inputs vary — each opening is one-time-padded by the triple.
func TestOpeningsAreMasked(t *testing.T) {
	c := boolcircuit.New()
	a, b := c.Input(), c.Input()
	c.MarkOutput(c.And(a, b))
	owner := []int{0, 1}
	same := true
	var first []byte
	for seed := int64(0); seed < 8; seed++ {
		_, tr, err := Run(c, []int64{1, 1}, owner, seed)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = append([]byte(nil), tr.Openings...)
			continue
		}
		for i := range tr.Openings {
			if tr.Openings[i] != first[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("openings identical across dealer seeds — masking broken")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	c := boolcircuit.New()
	a := c.Input()
	c.MarkOutput(a)
	if _, _, err := Run(c, nil, nil, 1); err == nil {
		t.Fatal("missing inputs accepted")
	}
	if _, _, err := Run(c, []int64{2}, []int{0}, 1); err == nil {
		t.Fatal("non-bit input accepted")
	}
	// Word-level gate (not blasted) rejected.
	c2 := boolcircuit.New()
	x, y := c2.Input(), c2.Input()
	c2.MarkOutput(c2.Add(x, y))
	if _, _, err := Run(c2, []int64{0, 1}, []int{0, 1}, 1); err == nil {
		t.Fatal("word-level gate accepted")
	}
}
