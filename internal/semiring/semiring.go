// Package semiring implements join-aggregate queries over commutative
// semirings (the AJAR/FAQ queries of Section 7): relations carry one
// annotation per tuple, joins combine annotations with ⊗, and
// projections aggregate them with ⊕. Theorem 5 extends to these queries
// by replacing Yannakakis-C's projections with ⊕-aggregations and adding
// a ⊗-map after each join; this package provides the semiring
// vocabulary, an annotated reference evaluator, and the circuit
// construction on top of package yannakakis's plan machinery.
package semiring

import (
	"fmt"
	"math"

	"circuitql/internal/expr"
	"circuitql/internal/ghd"
	"circuitql/internal/panda"
	"circuitql/internal/query"
	"circuitql/internal/relation"
	"circuitql/internal/relcircuit"
)

// Semiring is a commutative semiring over int64 whose ⊕ is expressible
// as a group-by aggregate kind and whose ⊗ as a binary expression —
// exactly the shape the circuits of Section 7 need.
type Semiring struct {
	Name    string
	AddKind relation.AggKind               // ⊕: sum, min, or max
	MulExpr func(a, b expr.Expr) expr.Expr // ⊗ as an expression
	Mul     func(a, b int64) int64         // ⊗ for the reference evaluator
	One     int64                          // ⊗ identity (initial annotation)
}

// SumProduct is the counting semiring (ℕ, +, ×): annotations count
// derivations; with all-1 annotations the query result annotation is the
// number of join witnesses per output tuple.
func SumProduct() Semiring {
	return Semiring{
		Name:    "sum-product",
		AddKind: relation.AggSum,
		MulExpr: func(a, b expr.Expr) expr.Expr { return expr.Mul(a, b) },
		Mul:     func(a, b int64) int64 { return a * b },
		One:     1,
	}
}

// MinPlus is the tropical semiring (ℤ∪{∞}, min, +): shortest-path style
// aggregation.
func MinPlus() Semiring {
	return Semiring{
		Name:    "min-plus",
		AddKind: relation.AggMin,
		MulExpr: func(a, b expr.Expr) expr.Expr { return expr.Add(a, b) },
		Mul:     func(a, b int64) int64 { return a + b },
		One:     0,
	}
}

// MaxPlus is (ℤ∪{-∞}, max, +): longest/most-profitable derivations.
func MaxPlus() Semiring {
	return Semiring{
		Name:    "max-plus",
		AddKind: relation.AggMax,
		MulExpr: func(a, b expr.Expr) expr.Expr { return expr.Add(a, b) },
		Mul:     func(a, b int64) int64 { return a + b },
		One:     0,
	}
}

// BoolOrAnd is the Boolean semiring ({0,1}, ∨, ∧) encoded as (max, min).
func BoolOrAnd() Semiring {
	return Semiring{
		Name:    "boolean",
		AddKind: relation.AggMax,
		MulExpr: func(a, b expr.Expr) expr.Expr {
			return expr.Bin(expr.OpMul, a, b) // 0/1 values: ∧ is ×
		},
		Mul: func(a, b int64) int64 { return a * b },
		One: 1,
	}
}

// AnnAttr is the annotation column name in annotated relations.
const AnnAttr = "ann"

// Annotate returns a copy of rel extended with the annotation column set
// to ann(t) (use a constant function for unit annotations).
func Annotate(rel *relation.Relation, ann func(relation.Tuple) int64) *relation.Relation {
	out := relation.New(append(rel.Schema(), AnnAttr)...)
	rel.Each(func(t relation.Tuple) {
		row := append(t.Clone(), ann(t))
		out.Insert(row...)
	})
	return out
}

// EvaluateRAM computes the join-aggregate query: the free-variable
// projection of the join, each output tuple annotated with
// ⊕ over join witnesses of ⊗ over the witnesses' input annotations.
// db maps relation names to *annotated* relations (schema + AnnAttr).
// The result has schema free + AnnAttr.
func EvaluateRAM(sr Semiring, q *query.Query, db map[string]*relation.Relation) (*relation.Relation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// Join all atoms, combining annotations with ⊗.
	var acc *relation.Relation
	for i, a := range q.Atoms {
		src, ok := db[a.Name]
		if !ok {
			return nil, fmt.Errorf("semiring: missing relation %q", a.Name)
		}
		if !src.HasAttr(AnnAttr) {
			return nil, fmt.Errorf("semiring: relation %q is not annotated", a.Name)
		}
		// Rename positional columns to variable names, keep annotation.
		renamed := relation.New(append(varNames(q, a), annName(i))...)
		src.Each(func(t relation.Tuple) {
			row := make([]int64, 0, len(a.Vars)+1)
			for j := range a.Vars {
				row = append(row, t[j])
			}
			row = append(row, t[src.AttrPos(AnnAttr)])
			renamed.Insert(row...)
		})
		if acc == nil {
			acc = renamed
		} else {
			acc = acc.NaturalJoin(renamed)
		}
	}
	// Combine per-atom annotations with ⊗ and aggregate over bound vars
	// with ⊕.
	freeAttrs := q.Free.Names(q.VarNames)
	grouped := map[string]int64{}
	out := relation.New(append(append([]string(nil), freeAttrs...), AnnAttr)...)
	var order []string
	rows := map[string][]int64{}
	acc.Each(func(t relation.Tuple) {
		ann := sr.One
		for i := range q.Atoms {
			ann = sr.Mul(ann, acc.Value(t, annName(i)))
		}
		key := ""
		row := make([]int64, 0, len(freeAttrs)+1)
		for _, a := range freeAttrs {
			v := acc.Value(t, a)
			key += fmt.Sprint(v, "|")
			row = append(row, v)
		}
		if prev, ok := grouped[key]; ok {
			grouped[key] = addSR(sr, prev, ann)
		} else {
			grouped[key] = ann
			order = append(order, key)
			rows[key] = row
		}
	})
	for _, key := range order {
		out.Insert(append(rows[key], grouped[key])...)
	}
	return out, nil
}

func addSR(sr Semiring, a, b int64) int64 {
	switch sr.AddKind {
	case relation.AggSum:
		return a + b
	case relation.AggMin:
		if a < b {
			return a
		}
		return b
	case relation.AggMax:
		if a > b {
			return a
		}
		return b
	}
	panic("semiring: unsupported ⊕")
}

func varNames(q *query.Query, a query.Atom) []string {
	out := make([]string, len(a.Vars))
	for i, v := range a.Vars {
		out[i] = q.VarNames[v]
	}
	return out
}

func annName(i int) string { return fmt.Sprintf("ann·%d", i) }

// Circuit computes a join-aggregate query as a relational circuit: the
// Yannakakis-C structure with ⊕-aggregations in place of projections and
// ⊗-maps after joins (Section 7). It currently supports queries whose
// GHD, after the reduce phase, is a single bag covering the free
// variables — which includes every full acyclic query with one bag per
// edge folded into a path, and, importantly, exercises the same
// aggregation circuits the general construction uses.
type Circuit struct {
	SR      Semiring
	Query   *query.Query
	Circuit *relcircuit.Circuit
	Output  int
}

// Compile builds the annotated circuit for q under dcs with output bound
// out. The db evaluated against must provide annotated atom relations
// (PrepareDB builds them).
func Compile(sr Semiring, q *query.Query, dcs query.DCSet, out float64) (*Circuit, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := dcs.Validate(q); err != nil {
		return nil, err
	}
	_, decomp, err := ghd.DAFhtw(q, dcs)
	if err != nil {
		return nil, err
	}
	c := relcircuit.New()

	// Annotated inputs: one per atom, schema vars + per-atom annotation.
	gates := make([]int, len(q.Atoms))
	for i, a := range q.Atoms {
		f := a.VarSet()
		fa := f.Names(q.VarNames)
		card := math.Inf(1)
		for _, dc := range dcs {
			if dc.Y == f && dc.X.Empty() && dc.N < card {
				card = dc.N
			}
		}
		b := relcircuit.Card(card).WithDeg(fa, 1)
		for _, dc := range dcs {
			if dc.Y == f && !dc.X.Empty() {
				b = b.WithDeg(dc.X.Names(q.VarNames), dc.N)
			}
		}
		gates[i] = c.Input(InputName(q, i), append(append([]string(nil), fa...), annName(i)), b)
	}

	// Fold the atoms along the decomposition in post-order: join bag
	// relations bottom-up, multiplying annotations, aggregating out
	// bound variables with ⊕ when they leave scope.
	// For the supported shape we join atoms in a fixed order determined
	// by the decomposition's post-order bag sequence, then aggregate to
	// the free variables at the end.
	ordered := atomOrder(q, decomp)
	cur := gates[ordered[0]]
	curAnn := annName(ordered[0])
	curCard := c.Gates[cur].Out.Card
	for _, ai := range ordered[1:] {
		g := gates[ai]
		// The intermediate join grows by at most the joined atom's
		// degree on the overlap variables (its cardinality when no
		// tighter degree constraint is declared).
		f := q.Atoms[ai].VarSet()
		overlap := query.VarSet(0)
		for _, at := range c.Gates[cur].Schema {
			if v := q.VarIndex(at); v >= 0 && f.Has(v) {
				overlap = overlap.Add(v)
			}
		}
		deg := c.Gates[g].Out.Card
		for _, dc := range dcs {
			if dc.Y == f && dc.X.SubsetOf(overlap) && dc.N < deg {
				deg = dc.N
			}
		}
		jCard := curCard * deg
		j := c.Join(cur, g, relcircuit.Card(jCard))
		// ⊗-combine the annotations.
		attrs := c.Gates[j].Schema
		exprs := make([]relcircuit.MapExpr, 0, len(attrs))
		for _, at := range attrs {
			switch at {
			case curAnn:
				exprs = append(exprs, relcircuit.MapExpr{As: "ann·acc",
					E: sr.MulExpr(expr.Attr(curAnn), expr.Attr(annName(ai)))})
			case annName(ai):
				// dropped
			default:
				exprs = append(exprs, relcircuit.MapExpr{As: at, E: expr.Attr(at)})
			}
		}
		cur = c.Map(j, exprs, relcircuit.Card(jCard))
		curAnn = "ann·acc"
		curCard = jCard
	}
	// Final ⊕-aggregation onto the free variables.
	freeAttrs := q.Free.Names(q.VarNames)
	agg := c.Agg(cur, freeAttrs, sr.AddKind, curAnn, AnnAttr,
		relcircuit.Card(math.Min(curCard, out)).WithDeg(freeAttrs, 1))
	final := c.Cap(agg, relcircuit.Card(out))
	c.MarkOutput(final)
	return &Circuit{SR: sr, Query: q, Circuit: c, Output: final}, nil
}

// atomOrder orders atoms by the decomposition's post-order so that joins
// follow the tree structure.
func atomOrder(q *query.Query, d *ghd.Decomp) []int {
	var order []int
	used := make([]bool, len(q.Atoms))
	po := d.PostOrder()
	// Root-first then children keeps the accumulator connected.
	for i := len(po) - 1; i >= 0; i-- {
		bag := d.Bags[po[i]]
		for ai, a := range q.Atoms {
			if !used[ai] && a.VarSet().SubsetOf(bag) {
				used[ai] = true
				order = append(order, ai)
			}
		}
	}
	for ai := range q.Atoms {
		if !used[ai] {
			order = append(order, ai)
		}
	}
	return order
}

// InputName is the database key for annotated atom i.
func InputName(q *query.Query, i int) string { return "ann:" + panda.InputName(q, i) }

// PrepareDB renames annotated relations to variable names + per-atom
// annotation columns, keyed by InputName.
func PrepareDB(q *query.Query, db map[string]*relation.Relation) (map[string]*relation.Relation, error) {
	out := make(map[string]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		src, ok := db[a.Name]
		if !ok {
			return nil, fmt.Errorf("semiring: missing relation %q", a.Name)
		}
		if !src.HasAttr(AnnAttr) {
			return nil, fmt.Errorf("semiring: relation %q is not annotated", a.Name)
		}
		renamed := relation.New(append(varNames(q, a), annName(i))...)
		src.Each(func(t relation.Tuple) {
			row := make([]int64, 0, len(a.Vars)+1)
			for j := range a.Vars {
				row = append(row, t[j])
			}
			row = append(row, t[src.AttrPos(AnnAttr)])
			renamed.Insert(row...)
		})
		out[InputName(q, i)] = renamed
	}
	return out, nil
}

// Evaluate runs the annotated circuit.
func (ac *Circuit) Evaluate(db map[string]*relation.Relation, check bool) (*relation.Relation, error) {
	pdb, err := PrepareDB(ac.Query, db)
	if err != nil {
		return nil, err
	}
	outs, err := ac.Circuit.Evaluate(pdb, check)
	if err != nil {
		return nil, err
	}
	return outs[ac.Output], nil
}
