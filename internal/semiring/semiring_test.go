package semiring

import (
	"math/rand"
	"testing"

	"circuitql/internal/query"
	"circuitql/internal/relation"
)

func annotatedRandom(rng *rand.Rand, n, dom, maxAnn int) *relation.Relation {
	base := relation.New("x", "y")
	for base.Len() < n {
		base.Insert(int64(rng.Intn(dom)), int64(rng.Intn(dom)))
	}
	return Annotate(base, func(relation.Tuple) int64 { return int64(1 + rng.Intn(maxAnn)) })
}

func TestAnnotate(t *testing.T) {
	r := relation.FromTuples([]string{"x"}, relation.Tuple{1}, relation.Tuple{2})
	a := Annotate(r, func(t relation.Tuple) int64 { return t[0] * 10 })
	if !a.Has(1, 10) || !a.Has(2, 20) {
		t.Fatalf("Annotate = %v", a)
	}
}

// TestSumProductCountsWitnesses: with all-1 annotations, the sum-product
// result annotates each output tuple with its number of join witnesses.
func TestSumProductCountsWitnesses(t *testing.T) {
	q := query.Path2Projected() // Q(A,C) :- R(A,B), S(B,C)
	r := Annotate(relation.FromTuples([]string{"x", "y"},
		relation.Tuple{1, 10}, relation.Tuple{1, 20}), func(relation.Tuple) int64 { return 1 })
	s := Annotate(relation.FromTuples([]string{"x", "y"},
		relation.Tuple{10, 5}, relation.Tuple{20, 5}, relation.Tuple{20, 6}),
		func(relation.Tuple) int64 { return 1 })
	out, err := EvaluateRAM(SumProduct(), q, map[string]*relation.Relation{"R": r, "S": s})
	if err != nil {
		t.Fatal(err)
	}
	// (1,5) via B=10 and B=20 -> 2 witnesses; (1,6) via B=20 -> 1.
	want := relation.FromTuples([]string{"A", "C", AnnAttr},
		relation.Tuple{1, 5, 2}, relation.Tuple{1, 6, 1})
	if !out.Equal(want) {
		t.Fatalf("sum-product = %v, want %v", out, want)
	}
}

// TestMinPlusShortestPath: min-plus over a 2-path computes 2-hop
// shortest-path distances.
func TestMinPlusShortestPath(t *testing.T) {
	q := query.Path2Projected()
	edges := relation.New("x", "y", AnnAttr)
	edges.Insert(1, 2, 3) // 1->2 cost 3
	edges.Insert(1, 3, 1) // 1->3 cost 1
	edges.Insert(2, 4, 1) // 2->4 cost 1
	edges.Insert(3, 4, 5) // 3->4 cost 5
	out, err := EvaluateRAM(MinPlus(), q, map[string]*relation.Relation{"R": edges, "S": edges})
	if err != nil {
		t.Fatal(err)
	}
	// 1->4: via 2 cost 4, via 3 cost 6 -> min 4.
	found := false
	out.Each(func(tp relation.Tuple) {
		if tp[0] == 1 && tp[1] == 4 {
			found = true
			if tp[2] != 4 {
				t.Fatalf("dist(1,4) = %d, want 4", tp[2])
			}
		}
	})
	if !found {
		t.Fatalf("no 1->4 path found: %v", out)
	}
}

// TestCircuitMatchesRAM: the annotated circuit agrees with the reference
// evaluator across semirings on random instances (bound-checked).
func TestCircuitMatchesRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for _, sr := range []Semiring{SumProduct(), MinPlus(), MaxPlus()} {
		sr := sr
		t.Run(sr.Name, func(t *testing.T) {
			for iter := 0; iter < 4; iter++ {
				q := query.Path2Projected()
				db := map[string]*relation.Relation{
					"R": annotatedRandom(rng, 10, 5, 4),
					"S": annotatedRandom(rng, 10, 5, 4),
				}
				want, err := EvaluateRAM(sr, q, db)
				if err != nil {
					t.Fatal(err)
				}
				// DC from the unannotated projections.
				plain := query.Database{}
				for name, r := range db {
					plain[name] = r.Project("x", "y")
				}
				dcs, err := query.DeriveDC(q, plain)
				if err != nil {
					t.Fatal(err)
				}
				ac, err := Compile(sr, q, dcs, float64(want.Len())+1)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ac.Evaluate(db, true)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("iter %d (%s): circuit %v ≠ RAM %v", iter, sr.Name, got, want)
				}
			}
		})
	}
}

// TestCircuitFullQuery: join-aggregate over a full acyclic query
// (aggregation only deduplicates; annotations combine per tuple).
func TestCircuitFullQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	q := query.Path2()
	db := map[string]*relation.Relation{
		"R": annotatedRandom(rng, 8, 4, 3),
		"S": annotatedRandom(rng, 8, 4, 3),
	}
	want, err := EvaluateRAM(SumProduct(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	plain := query.Database{}
	for name, r := range db {
		plain[name] = r.Project("x", "y")
	}
	dcs, err := query.DeriveDC(q, plain)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := Compile(SumProduct(), q, dcs, float64(want.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ac.Evaluate(db, true)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("full-query circuit %v ≠ RAM %v", got, want)
	}
}

func TestBooleanSemiring(t *testing.T) {
	q := query.Path2Projected()
	r := Annotate(relation.FromTuples([]string{"x", "y"}, relation.Tuple{1, 2}),
		func(relation.Tuple) int64 { return 1 })
	s := Annotate(relation.FromTuples([]string{"x", "y"}, relation.Tuple{2, 3}),
		func(relation.Tuple) int64 { return 1 })
	out, err := EvaluateRAM(BoolOrAnd(), q, map[string]*relation.Relation{"R": r, "S": s})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has(1, 3, 1) {
		t.Fatalf("boolean semiring = %v", out)
	}
}

func TestErrors(t *testing.T) {
	q := query.Path2()
	if _, err := EvaluateRAM(SumProduct(), q, map[string]*relation.Relation{}); err == nil {
		t.Fatal("expected missing relation error")
	}
	bare := map[string]*relation.Relation{
		"R": relation.FromTuples([]string{"x", "y"}, relation.Tuple{1, 2}),
		"S": relation.FromTuples([]string{"x", "y"}, relation.Tuple{2, 3}),
	}
	if _, err := EvaluateRAM(SumProduct(), q, bare); err == nil {
		t.Fatal("expected unannotated relation error")
	}
}
