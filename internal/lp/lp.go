// Package lp implements an exact linear programming solver: a dense
// two-phase primal simplex over arbitrary-precision rationals
// (math/big.Rat) with Bland's anti-cycling rule and dual-solution
// extraction.
//
// Exact arithmetic matters here: the polymatroid bound LPs of the paper
// have optima like 3/2·log N, and the Shannon-flow machinery consumes the
// *dual* solution as a proof witness, where an epsilon-rounded multiplier
// would break the downstream bookkeeping. Problem sizes are tiny (2^n
// variables for constant query size n), so exactness costs nothing that
// matters.
package lp

import (
	"context"
	"fmt"
	"math/big"

	"circuitql/internal/guard"
	"circuitql/internal/obs"
)

// Sense selects the optimization direction.
type Sense int

// Optimization senses.
const (
	Maximize Sense = iota
	Minimize
)

// Status describes the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

type rowKind int

const (
	rowLE rowKind = iota // Σ a·x ≤ b
	rowGE                // Σ a·x ≥ b
	rowEQ                // Σ a·x = b
)

type row struct {
	kind   rowKind
	coeffs map[int]*big.Rat
	rhs    *big.Rat
}

// Problem is a linear program over non-negative variables x ≥ 0.
type Problem struct {
	sense Sense
	nvars int
	obj   []*big.Rat
	rows  []row
}

// NewProblem creates a problem with nvars non-negative variables and a
// zero objective.
func NewProblem(nvars int, sense Sense) *Problem {
	if nvars <= 0 {
		panic(guard.Invalidf("lp: need at least one variable"))
	}
	obj := make([]*big.Rat, nvars)
	for i := range obj {
		obj[i] = new(big.Rat)
	}
	return &Problem{sense: sense, nvars: nvars, obj: obj}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.nvars }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// SetObjective sets the objective coefficient of variable i.
func (p *Problem) SetObjective(i int, v *big.Rat) {
	p.obj[i] = new(big.Rat).Set(v)
}

// SetObjectiveInt sets the objective coefficient of variable i to an
// integer value.
func (p *Problem) SetObjectiveInt(i int, v int64) {
	p.obj[i] = new(big.Rat).SetInt64(v)
}

func cloneCoeffs(coeffs map[int]*big.Rat) map[int]*big.Rat {
	c := make(map[int]*big.Rat, len(coeffs))
	for i, v := range coeffs {
		c[i] = new(big.Rat).Set(v)
	}
	return c
}

func (p *Problem) addRow(kind rowKind, coeffs map[int]*big.Rat, rhs *big.Rat) int {
	for i := range coeffs {
		if i < 0 || i >= p.nvars {
			panic(guard.Invalidf("lp: coefficient for variable %d out of range", i))
		}
	}
	p.rows = append(p.rows, row{kind: kind, coeffs: cloneCoeffs(coeffs), rhs: new(big.Rat).Set(rhs)})
	return len(p.rows) - 1
}

// AddLE adds the constraint Σ coeffs·x ≤ rhs and returns its row index.
func (p *Problem) AddLE(coeffs map[int]*big.Rat, rhs *big.Rat) int {
	return p.addRow(rowLE, coeffs, rhs)
}

// AddGE adds the constraint Σ coeffs·x ≥ rhs and returns its row index.
func (p *Problem) AddGE(coeffs map[int]*big.Rat, rhs *big.Rat) int {
	return p.addRow(rowGE, coeffs, rhs)
}

// AddEQ adds the constraint Σ coeffs·x = rhs and returns its row index.
func (p *Problem) AddEQ(coeffs map[int]*big.Rat, rhs *big.Rat) int {
	return p.addRow(rowEQ, coeffs, rhs)
}

// Coeffs is a convenience constructor for sparse coefficient maps from
// (index, numerator) pairs with unit denominators.
func Coeffs(pairs ...int64) map[int]*big.Rat {
	if len(pairs)%2 != 0 {
		panic(guard.Invalidf("lp: Coeffs needs (index, value) pairs"))
	}
	m := make(map[int]*big.Rat, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		m[int(pairs[i])] = new(big.Rat).SetInt64(pairs[i+1])
	}
	return m
}

// Rat returns a rational from a numerator/denominator pair.
func Rat(num, den int64) *big.Rat { return big.NewRat(num, den) }

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	Objective *big.Rat   // optimal value in the problem's own sense
	X         []*big.Rat // primal solution, length NumVars
	Dual      []*big.Rat // dual values, one per constraint row
}

// Solve runs two-phase simplex. The returned Solution has Status Optimal,
// Infeasible, or Unbounded; X and Dual are populated only when Optimal.
//
// Dual sign convention: for a Maximize problem, the dual of a ≤ row is
// ≥ 0 and the dual of a ≥ row is ≤ 0 (and vice versa for Minimize);
// equality rows have free duals. With these conventions,
// Σ_i Dual_i · rhs_i = Objective at optimality (strong duality), which
// the tests verify.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveCtx(context.Background())
}

// SolveCtx is Solve under a context: the simplex loop polls ctx at
// sub-pivot granularity (so cancellation and deadlines interrupt even a
// single large exact-rational pivot promptly) and charges every pivot
// against the guard.Budget attached to ctx, if any. Interruptions
// surface as guard.ErrCanceled or guard.ErrBudgetExceeded.
//
// Observability: each solve accumulates lp_solves/lp_pivots onto the
// enclosing obs span, so a compile's lp-solve stage reports how many
// exact LPs it ran and how much pivoting they cost.
func (p *Problem) SolveCtx(ctx context.Context) (*Solution, error) {
	t, err := newTableau(ctx, p)
	if err != nil {
		return nil, err
	}
	if sp := obs.SpanFromContext(ctx); sp != nil {
		defer func() {
			sp.AddInt(obs.CounterSolves, 1)
			sp.AddInt(obs.CounterPivots, t.pivots)
		}()
	}
	feasible, err := t.phase1()
	if err != nil {
		return nil, err
	}
	if !feasible {
		return &Solution{Status: Infeasible}, nil
	}
	st, err := t.phase2()
	if err != nil {
		return nil, err
	}
	switch st {
	case Unbounded:
		return &Solution{Status: Unbounded}, nil
	case Optimal:
	default:
		return nil, fmt.Errorf("lp: internal: unexpected phase-2 status")
	}
	return t.extract(), nil
}

// tableau is the dense simplex tableau. Columns: structural variables
// [0, n), slacks [n, n+m) (one per row; equality rows get a slack column
// that is fixed to zero by never allowing it to enter), then the rhs.
// Artificial variables are appended during phase 1 and frozen afterwards.
type tableau struct {
	p        *Problem
	m, n     int // constraint count, structural variable count
	cols     int // current number of variable columns (excl. rhs)
	nart     int // number of artificial columns
	a        [][]*big.Rat
	basis    []int // basis[i] = column basic in row i
	flipped  []bool
	isSlack  []int // column -> row index if slack, else -1
	banned   []bool
	artStart int

	ctx    context.Context
	budget *guard.Budget
	pivots int64
}

func newTableau(ctx context.Context, p *Problem) (*tableau, error) {
	m, n := len(p.rows), p.nvars
	t := &tableau{p: p, m: m, n: n, ctx: ctx, budget: guard.FromContext(ctx)}
	t.cols = n + m
	t.a = make([][]*big.Rat, m+1) // +1 objective row
	t.flipped = make([]bool, m)
	for i := 0; i <= m; i++ {
		if i&15 == 0 {
			if err := guard.Poll(ctx); err != nil {
				return nil, err
			}
		}
		t.a[i] = make([]*big.Rat, t.cols+1)
		for j := range t.a[i] {
			t.a[i][j] = new(big.Rat)
		}
	}
	t.basis = make([]int, m)
	t.isSlack = make([]int, t.cols)
	for j := range t.isSlack {
		t.isSlack[j] = -1
	}
	t.banned = make([]bool, t.cols)

	for i, r := range p.rows {
		for j, v := range r.coeffs {
			t.a[i][j].Set(v)
		}
		t.a[i][t.cols].Set(r.rhs)
		slack := n + i
		t.isSlack[slack] = i
		switch r.kind {
		case rowLE:
			t.a[i][slack].SetInt64(1)
		case rowGE:
			t.a[i][slack].SetInt64(-1)
		case rowEQ:
			// No usable slack: ban the column (it stays all-zero).
			t.banned[slack] = true
		}
		// Normalize to rhs ≥ 0.
		if t.a[i][t.cols].Sign() < 0 {
			t.flipped[i] = true
			for j := 0; j <= t.cols; j++ {
				t.a[i][j].Neg(t.a[i][j])
			}
		}
	}
	return t, nil
}

// needsArtificial reports whether row i lacks a ready basic column (a
// slack with coefficient +1 after normalization).
func (t *tableau) needsArtificial(i int) bool {
	slack := t.n + i
	return t.banned[slack] || t.a[i][slack].Sign() != 1
}

func (t *tableau) addColumn() int {
	j := t.cols
	t.cols++
	for i := range t.a {
		t.a[i] = append(t.a[i], new(big.Rat))
		// Keep rhs as the last element: swap the new zero with rhs.
		last := len(t.a[i]) - 1
		t.a[i][last], t.a[i][last-1] = t.a[i][last-1], t.a[i][last]
	}
	t.isSlack = append(t.isSlack, -1)
	t.banned = append(t.banned, false)
	return j
}

// phase1 finds a basic feasible solution; it reports feasibility.
func (t *tableau) phase1() (bool, error) {
	t.artStart = t.cols
	var artRows []int
	for i := 0; i < t.m; i++ {
		if !t.needsArtificial(i) {
			t.basis[i] = t.n + i
			continue
		}
		j := t.addColumn()
		t.a[i][j].SetInt64(1)
		t.basis[i] = j
		artRows = append(artRows, i)
		t.nart++
	}
	if t.nart == 0 {
		return true, nil
	}
	// Phase-1 objective: maximize -Σ artificials. Objective row holds
	// reduced costs; start with +1 in artificial columns then zero the
	// basic ones by subtracting their rows.
	obj := t.a[t.m]
	for j := 0; j <= t.cols; j++ {
		obj[j].SetInt64(0)
	}
	for j := t.artStart; j < t.cols; j++ {
		obj[j].SetInt64(1)
	}
	for _, i := range artRows {
		for j := 0; j <= t.cols; j++ {
			obj[j].Sub(obj[j], t.a[i][j])
		}
	}
	st, err := t.iterate()
	if err != nil {
		return false, err
	}
	if st != Optimal {
		// Phase 1 cannot be unbounded (objective bounded by 0).
		return false, nil
	}
	if t.a[t.m][t.cols].Sign() != 0 {
		return false, nil // residual artificial value -> infeasible
	}
	// Drive basic artificials out (degenerate rows).
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if !t.banned[j] && t.a[i][j].Sign() != 0 {
				if err := t.pivot(i, j); err != nil {
					return false, err
				}
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is all-zero over real columns: redundant constraint.
			// Leave the artificial basic at value zero but ban pivots in.
		}
	}
	// Freeze artificial columns.
	for j := t.artStart; j < t.cols; j++ {
		t.banned[j] = true
	}
	return true, nil
}

// phase2 optimizes the real objective from the current feasible basis.
func (t *tableau) phase2() (Status, error) {
	obj := t.a[t.m]
	for j := 0; j <= t.cols; j++ {
		obj[j].SetInt64(0)
	}
	neg := big.NewRat(-1, 1)
	for j := 0; j < t.n; j++ {
		c := new(big.Rat).Set(t.p.obj[j])
		if t.p.sense == Minimize {
			c.Mul(c, neg)
		}
		obj[j].Neg(c) // reduced cost row starts at -c for a max problem
	}
	// Express in terms of the current basis: zero out basic columns.
	for i := 0; i < t.m; i++ {
		b := t.basis[i]
		if obj[b].Sign() == 0 {
			continue
		}
		factor := new(big.Rat).Set(obj[b])
		for j := 0; j <= t.cols; j++ {
			tmp := new(big.Rat).Mul(factor, t.a[i][j])
			obj[j].Sub(obj[j], tmp)
		}
	}
	return t.iterate()
}

// iterate runs simplex pivots with Bland's rule until optimal,
// unbounded, or interrupted by the context or pivot budget.
func (t *tableau) iterate() (Status, error) {
	obj := t.a[t.m]
	for {
		if err := t.budget.Pivot(t.ctx); err != nil {
			return Optimal, err
		}
		// Entering column: smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < t.cols; j++ {
			if !t.banned[j] && obj[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		// Ratio test with Bland tie-breaking on basis variable index.
		leave := -1
		var best *big.Rat
		for i := 0; i < t.m; i++ {
			if t.a[i][enter].Sign() <= 0 {
				continue
			}
			ratio := new(big.Rat).Quo(t.a[i][t.cols], t.a[i][enter])
			if leave < 0 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && t.basis[i] < t.basis[leave]) {
				leave, best = i, ratio
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		if err := t.pivot(leave, enter); err != nil {
			return Optimal, err
		}
		t.pivots++
	}
}

// pivot makes column enter basic in row leave. A single exact-rational
// pivot touches m·cols entries, so it polls the context every few rows
// to keep the cancellation latency well under the row-elimination cost.
func (t *tableau) pivot(leave, enter int) error {
	prow := t.a[leave]
	inv := new(big.Rat).Inv(prow[enter])
	for j := 0; j <= t.cols; j++ {
		prow[j].Mul(prow[j], inv)
	}
	for i := 0; i <= t.m; i++ {
		if i&15 == 0 {
			if err := guard.Poll(t.ctx); err != nil {
				return err
			}
		}
		if i == leave || t.a[i][enter].Sign() == 0 {
			continue
		}
		factor := new(big.Rat).Set(t.a[i][enter])
		for j := 0; j <= t.cols; j++ {
			tmp := new(big.Rat).Mul(factor, prow[j])
			t.a[i][j].Sub(t.a[i][j], tmp)
		}
	}
	t.basis[leave] = enter
	return nil
}

// extract builds the Solution from an optimal tableau.
func (t *tableau) extract() *Solution {
	sol := &Solution{Status: Optimal}
	sol.X = make([]*big.Rat, t.n)
	for j := range sol.X {
		sol.X[j] = new(big.Rat)
	}
	for i, b := range t.basis {
		if b < t.n {
			sol.X[b].Set(t.a[i][t.cols])
		}
	}
	obj := new(big.Rat).Set(t.a[t.m][t.cols])
	if t.p.sense == Minimize {
		obj.Neg(obj)
	}
	sol.Objective = obj

	// Duals. The reduced cost of a column with zero objective coefficient
	// equals y'·A_col, where y' is the dual of the *normalized* tableau
	// rows and A_col the column's original tableau coefficients. Each
	// row's slack (or, for equality rows, its phase-1 artificial) is such
	// a column with a single ±1 entry, so y'_i is read off directly; the
	// dual of the original row then flips sign iff the row was
	// rhs-normalized, and again for Minimize (which we solved negated).
	sol.Dual = make([]*big.Rat, t.m)
	for i := 0; i < t.m; i++ {
		y := new(big.Rat)
		switch t.p.rows[i].kind {
		case rowEQ:
			for j := t.artStart; j < t.cols; j++ {
				if t.artForRow(j) == i {
					y.Set(t.a[t.m][j]) // artificial coefficient is +1
					break
				}
			}
		default:
			y.Set(t.a[t.m][t.n+i])
			coefPositive := (t.p.rows[i].kind == rowLE) != t.flipped[i]
			if !coefPositive {
				y.Neg(y)
			}
		}
		if t.flipped[i] {
			y.Neg(y)
		}
		if t.p.sense == Minimize {
			y.Neg(y)
		}
		sol.Dual[i] = y
	}
	return sol
}

// artForRow returns the constraint row an artificial column was created
// for, or -1. Artificial columns were added in row order during phase 1,
// with coefficient 1 in exactly their row at creation time; we track this
// by scanning creation order.
func (t *tableau) artForRow(col int) int {
	// Reconstruct: artificial columns were appended in increasing row
	// order for rows that needed one.
	k := col - t.artStart
	cnt := 0
	for i := 0; i < t.m; i++ {
		if t.needsArtificialOriginal(i) {
			if cnt == k {
				return i
			}
			cnt++
		}
	}
	return -1
}

// needsArtificialOriginal mirrors the phase-1 decision using only
// immutable problem data (kind and flip status plus original slack sign).
func (t *tableau) needsArtificialOriginal(i int) bool {
	switch t.p.rows[i].kind {
	case rowEQ:
		return true
	case rowLE:
		return t.flipped[i] // flipped LE has slack -1
	case rowGE:
		return !t.flipped[i] // unflipped GE has slack -1
	}
	return false
}
