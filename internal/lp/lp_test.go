package lp

import (
	"math/big"
	"math/rand"
	"testing"
)

func ratEq(t *testing.T, got *big.Rat, num, den int64, what string) {
	t.Helper()
	if got.Cmp(big.NewRat(num, den)) != 0 {
		t.Fatalf("%s = %v, want %d/%d", what, got, num, den)
	}
}

// checkStrongDuality verifies Σ dual_i · rhs_i equals the objective.
func checkStrongDuality(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	sum := new(big.Rat)
	for i, r := range p.rows {
		sum.Add(sum, new(big.Rat).Mul(sol.Dual[i], r.rhs))
	}
	if sum.Cmp(sol.Objective) != 0 {
		t.Fatalf("strong duality violated: y·b = %v, obj = %v", sum, sol.Objective)
	}
}

// checkDualFeasible verifies Aᵀy ≥ c for Maximize (≤ c for Minimize) on
// every variable, i.e. the dual solution certifies the bound.
func checkDualFeasible(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	for j := 0; j < p.nvars; j++ {
		lhs := new(big.Rat)
		for i, r := range p.rows {
			if c, ok := r.coeffs[j]; ok {
				lhs.Add(lhs, new(big.Rat).Mul(sol.Dual[i], c))
			}
		}
		switch p.sense {
		case Maximize:
			if lhs.Cmp(p.obj[j]) < 0 {
				t.Fatalf("dual infeasible at var %d: Aᵀy = %v < c = %v", j, lhs, p.obj[j])
			}
		case Minimize:
			if lhs.Cmp(p.obj[j]) > 0 {
				t.Fatalf("dual infeasible at var %d: Aᵀy = %v > c = %v", j, lhs, p.obj[j])
			}
		}
	}
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6 -> x=4, y=0, obj 12.
	p := NewProblem(2, Maximize)
	p.SetObjectiveInt(0, 3)
	p.SetObjectiveInt(1, 2)
	p.AddLE(Coeffs(0, 1, 1, 1), Rat(4, 1))
	p.AddLE(Coeffs(0, 1, 1, 3), Rat(6, 1))
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("status %v err %v", sol.Status, err)
	}
	ratEq(t, sol.Objective, 12, 1, "objective")
	ratEq(t, sol.X[0], 4, 1, "x")
	ratEq(t, sol.X[1], 0, 1, "y")
	checkStrongDuality(t, p, sol)
	checkDualFeasible(t, p, sol)
}

func TestFractionalOptimum(t *testing.T) {
	// max x + y s.t. 2x + y ≤ 3, x + 2y ≤ 3 -> x=y=1, obj 2; with
	// objective x + 2y the optimum moves to a vertex with fractions.
	p := NewProblem(2, Maximize)
	p.SetObjectiveInt(0, 1)
	p.SetObjectiveInt(1, 1)
	p.AddLE(Coeffs(0, 2, 1, 1), Rat(3, 1))
	p.AddLE(Coeffs(0, 1, 1, 2), Rat(3, 1))
	sol, _ := p.Solve()
	ratEq(t, sol.Objective, 2, 1, "objective")
	checkStrongDuality(t, p, sol)

	// The AGM-style half-weights LP: max h s.t. h ≤ x+y, x ≤ 1, y ≤ 1,
	// x + y ≤ 3/2 -> h = 3/2.
	q := NewProblem(3, Maximize)
	q.SetObjectiveInt(0, 1)
	q.AddLE(map[int]*big.Rat{0: Rat(1, 1), 1: Rat(-1, 1), 2: Rat(-1, 1)}, Rat(0, 1))
	q.AddLE(Coeffs(1, 1), Rat(1, 1))
	q.AddLE(Coeffs(2, 1), Rat(1, 1))
	q.AddLE(Coeffs(1, 1, 2, 1), Rat(3, 2))
	sol2, _ := q.Solve()
	ratEq(t, sol2.Objective, 3, 2, "objective")
	checkStrongDuality(t, q, sol2)
	checkDualFeasible(t, q, sol2)
}

func TestMinimizeWithGE(t *testing.T) {
	// Fractional edge cover of the triangle: min x+y+z s.t. each vertex
	// covered: x+z ≥ 1 (A), x+y ≥ 1 (B), y+z ≥ 1 (C) -> all 1/2, obj 3/2.
	p := NewProblem(3, Minimize)
	for i := 0; i < 3; i++ {
		p.SetObjectiveInt(i, 1)
	}
	p.AddGE(Coeffs(0, 1, 2, 1), Rat(1, 1))
	p.AddGE(Coeffs(0, 1, 1, 1), Rat(1, 1))
	p.AddGE(Coeffs(1, 1, 2, 1), Rat(1, 1))
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("status %v err %v", sol.Status, err)
	}
	ratEq(t, sol.Objective, 3, 2, "edge cover")
	for i := 0; i < 3; i++ {
		ratEq(t, sol.X[i], 1, 2, "x_i")
	}
	checkStrongDuality(t, p, sol)
	checkDualFeasible(t, p, sol)
}

func TestEquality(t *testing.T) {
	// max x + y s.t. x + y = 2, x ≤ 1 -> obj 2.
	p := NewProblem(2, Maximize)
	p.SetObjectiveInt(0, 1)
	p.SetObjectiveInt(1, 1)
	p.AddEQ(Coeffs(0, 1, 1, 1), Rat(2, 1))
	p.AddLE(Coeffs(0, 1), Rat(1, 1))
	sol, _ := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	ratEq(t, sol.Objective, 2, 1, "objective")
	checkStrongDuality(t, p, sol)
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1, Maximize)
	p.SetObjectiveInt(0, 1)
	p.AddLE(Coeffs(0, 1), Rat(1, 1))
	p.AddGE(Coeffs(0, 1), Rat(2, 1))
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2, Maximize)
	p.SetObjectiveInt(0, 1)
	p.AddLE(Coeffs(1, 1), Rat(5, 1)) // x unconstrained above
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// max -x s.t. -x ≤ -3 (i.e. x ≥ 3) -> x = 3, obj -3.
	p := NewProblem(1, Maximize)
	p.SetObjectiveInt(0, -1)
	p.AddLE(Coeffs(0, -1), Rat(-3, 1))
	sol, _ := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	ratEq(t, sol.Objective, -3, 1, "objective")
	ratEq(t, sol.X[0], 3, 1, "x")
	checkStrongDuality(t, p, sol)
}

func TestDegenerateCycleGuard(t *testing.T) {
	// A classically cycling instance (Beale); Bland's rule must terminate.
	p := NewProblem(4, Maximize)
	p.SetObjective(0, Rat(3, 4))
	p.SetObjectiveInt(1, -150)
	p.SetObjective(2, Rat(1, 50))
	p.SetObjectiveInt(3, -6)
	p.AddLE(map[int]*big.Rat{0: Rat(1, 4), 1: Rat(-60, 1), 2: Rat(-1, 25), 3: Rat(9, 1)}, Rat(0, 1))
	p.AddLE(map[int]*big.Rat{0: Rat(1, 2), 1: Rat(-90, 1), 2: Rat(-1, 50), 3: Rat(3, 1)}, Rat(0, 1))
	p.AddLE(Coeffs(2, 1), Rat(1, 1))
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("status %v err %v", sol.Status, err)
	}
	ratEq(t, sol.Objective, 1, 20, "objective")
	checkStrongDuality(t, p, sol)
	checkDualFeasible(t, p, sol)
}

// TestRandomDualityProperty solves random feasible bounded LPs and checks
// strong duality and dual feasibility hold exactly.
func TestRandomDualityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 60; iter++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(5)
		p := NewProblem(n, Maximize)
		for j := 0; j < n; j++ {
			p.SetObjectiveInt(j, int64(rng.Intn(9)-2))
		}
		for i := 0; i < m; i++ {
			coeffs := map[int]*big.Rat{}
			for j := 0; j < n; j++ {
				coeffs[j] = Rat(int64(rng.Intn(5)), 1) // non-negative -> bounded
			}
			p.AddLE(coeffs, Rat(int64(1+rng.Intn(20)), 1))
		}
		// Box constraints guarantee boundedness even with zero rows.
		for j := 0; j < n; j++ {
			p.AddLE(Coeffs(int64(j), 1), Rat(50, 1))
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("iter %d: status %v", iter, sol.Status)
		}
		checkStrongDuality(t, p, sol)
		checkDualFeasible(t, p, sol)
		// Primal feasibility of the reported solution.
		for i, r := range p.rows {
			lhs := new(big.Rat)
			for j, c := range r.coeffs {
				lhs.Add(lhs, new(big.Rat).Mul(c, sol.X[j]))
			}
			if lhs.Cmp(r.rhs) > 0 {
				t.Fatalf("iter %d: primal infeasible row %d", iter, i)
			}
		}
	}
}

func TestMinimizeEqualityDuals(t *testing.T) {
	// min 2x + 3y s.t. x + y = 4, x ≥ 1 -> x=4? y=0: check: obj 8? but
	// x ≥ 1 is satisfied; optimum x=4,y=0 obj 8.
	p := NewProblem(2, Minimize)
	p.SetObjectiveInt(0, 2)
	p.SetObjectiveInt(1, 3)
	p.AddEQ(Coeffs(0, 1, 1, 1), Rat(4, 1))
	p.AddGE(Coeffs(0, 1), Rat(1, 1))
	sol, _ := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	ratEq(t, sol.Objective, 8, 1, "objective")
	ratEq(t, sol.X[0], 4, 1, "x")
	checkStrongDuality(t, p, sol)
	checkDualFeasible(t, p, sol)
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status.String wrong")
	}
}
