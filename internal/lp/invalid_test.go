package lp

import (
	"errors"
	"math/big"
	"testing"

	"circuitql/internal/guard"
)

// The misuse panics must carry guard.ErrInvalidInput so guard.Recover
// at the API boundary classifies them as caller errors, not internal
// bugs.
func TestMisusePanicsAreTypedInvalidInput(t *testing.T) {
	cases := map[string]func(){
		"no variables":       func() { NewProblem(0, Maximize) },
		"negative variables": func() { NewProblem(-3, Minimize) },
		"coeff out of range": func() { NewProblem(2, Maximize).AddLE(Coeffs(5, 1), big.NewRat(1, 1)) },
		"odd coeff pairs":    func() { Coeffs(0, 1, 2) },
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("no panic")
				}
				err, ok := r.(error)
				if !ok {
					t.Fatalf("panic payload %v is not an error", r)
				}
				if !errors.Is(err, guard.ErrInvalidInput) {
					t.Fatalf("panic %v does not carry ErrInvalidInput", err)
				}
			}()
			f()
		})
	}
}
