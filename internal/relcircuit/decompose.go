package relcircuit

import (
	"math"

	"circuitql/internal/expr"
	"circuitql/internal/relation"
)

// DecompBranch is one sub-relation produced by the decomposition circuit
// (Algorithm 2): Sub carries R_Y^{(j)} with deg_X ≤ Deg, Proj carries
// Π_X(R_Y^{(j)}) with |Π_X| ≤ NX, and NX·Deg ≤ N (condition (4d)).
type DecompBranch struct {
	Sub  int
	Proj int
	NX   float64
	Deg  float64
}

// Decompose emits the decomposition circuit of Algorithm 2 on gate in (a
// relation over yAttrs with |R| ≤ card), splitting at xAttrs ⊂ yAttrs.
// It returns 2k branches, k = 1 + ⌊log₂ card⌋, that partition the input:
// branch pairs (2i-1, 2i) hold the tuples whose X-degree lies in
// [2^(i-1), 2^i), split into odd/even order positions so each half has
// degree at most 2^(i-1).
func Decompose(c *Circuit, in int, xAttrs []string, card float64) []DecompBranch {
	yAttrs := c.Gates[in].Schema
	n := Ceil(card)
	k := 1
	for 1<<uint(k) <= n {
		k++
	}

	// Line 1: R_{Y,count} ← R_Y ⋈ Π_{X,count}(R_Y).
	cnt := c.Agg(in, xAttrs, relation.AggCount, "", "count", Card(card).WithDeg(xAttrs, 1))
	withCount := c.Join(in, cnt, Card(card))

	var out []DecompBranch
	for i := 1; i <= k; i++ {
		lo := int64(1) << uint(i-1)
		hi := int64(1) << uint(i)
		nx := math.Floor(float64(n) / float64(lo))
		if nx < 1 {
			nx = 1
		}
		deg := float64(lo)
		// Lines 4-6: select the degree bucket, order by X, split by
		// parity of the position.
		sel := c.Select(withCount, expr.InRange("count", lo, hi), Card(card))
		ti := c.Project(sel, yAttrs, Card(card).WithDeg(xAttrs, 2*deg))
		ord := c.Order(ti, xAttrs, Card(card))
		for parity := 0; parity < 2; parity++ {
			var pred expr.Expr
			if parity == 0 {
				pred = expr.IsOdd(relation.OrderAttr)
			} else {
				pred = expr.IsEven(relation.OrderAttr)
			}
			ps := c.Select(ord, pred, Card(card))
			sub := c.Project(ps, yAttrs,
				Card(math.Min(card, nx*deg)).WithDeg(xAttrs, deg).WithDeg(yAttrs, 1))
			proj := c.Project(sub, xAttrs, Card(nx).WithDeg(xAttrs, 1))
			out = append(out, DecompBranch{Sub: sub, Proj: proj, NX: nx, Deg: deg})
		}
	}
	return out
}
