package relcircuit

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the relational circuit in Graphviz DOT format, one
// node per gate labeled with its operator, schema, and cardinality
// bound. Output gates are drawn with a double border; edges follow the
// wires. Render with `dot -Tsvg`.
func (c *Circuit) WriteDot(w io.Writer, name string) error {
	if name == "" {
		name = "circuit"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\", fontsize=10];\n", name)
	isOut := map[int]bool{}
	for _, o := range c.Outputs {
		isOut[o] = true
	}
	for _, g := range c.Gates {
		label := fmt.Sprintf("g%d %s\\n%s\\n|%s| ≤ %.6g",
			g.ID, escape(g.Label), strings.Join(g.Schema, ","), "R", g.Out.Card)
		attrs := fmt.Sprintf("label=\"%s\"", label)
		if g.Kind == KindInput {
			attrs += ", style=filled, fillcolor=lightgrey"
		}
		if isOut[g.ID] {
			attrs += ", peripheries=2"
		}
		fmt.Fprintf(&b, "  g%d [%s];\n", g.ID, attrs)
		for _, in := range g.In {
			fmt.Fprintf(&b, "  g%d -> g%d;\n", in, g.ID)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "\"", "\\\"")
	return s
}
