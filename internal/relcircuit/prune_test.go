package relcircuit

import (
	"testing"

	"circuitql/internal/expr"
	"circuitql/internal/relation"
)

func TestPruneDropsDeadGates(t *testing.T) {
	c := New()
	r := c.Input("R", []string{"A", "B"}, Card(3))
	s := c.Input("S", []string{"B", "C"}, Card(3))
	dead1 := c.Select(r, expr.Const(1), Card(3))
	dead2 := c.Project(dead1, []string{"A"}, Card(3))
	_ = dead2
	live := c.Join(r, s, Card(9))
	c.MarkOutput(live)

	pruned, mapping := c.Prune()
	if pruned.Size() != 3 { // two inputs + the join
		t.Fatalf("pruned size = %d, want 3", pruned.Size())
	}
	if _, ok := mapping[dead1]; ok {
		t.Fatal("dead gate survived in mapping")
	}
	nj, ok := mapping[live]
	if !ok {
		t.Fatal("live gate missing from mapping")
	}
	if pruned.Outputs[0] != nj {
		t.Fatal("output not remapped")
	}

	// Pruned circuit evaluates identically.
	db := map[string]*relation.Relation{
		"R": relation.FromTuples([]string{"A", "B"}, relation.Tuple{1, 2}),
		"S": relation.FromTuples([]string{"B", "C"}, relation.Tuple{2, 3}),
	}
	want, err := c.Evaluate(db, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pruned.Evaluate(db, true)
	if err != nil {
		t.Fatal(err)
	}
	if !got[nj].Equal(want[live]) {
		t.Fatal("pruned circuit output differs")
	}
}

func TestPruneKeepsAllInputs(t *testing.T) {
	// Inputs are part of the circuit contract even when unused.
	c := New()
	c.Input("Unused", []string{"X"}, Card(1))
	used := c.Input("Used", []string{"Y"}, Card(1))
	c.MarkOutput(used)
	pruned, _ := c.Prune()
	if pruned.Size() != 2 {
		t.Fatalf("pruned size = %d, want both inputs kept", pruned.Size())
	}
}
