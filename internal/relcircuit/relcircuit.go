// Package relcircuit implements the paper's relational circuits (Section
// 4.3): directed acyclic graphs whose wires carry relations bounded by
// declared cardinality and degree constraints, and whose gates are the
// extended relational operators — selection, projection, natural join,
// union, group-by aggregation, ordering (τ), and map (ρ).
//
// A relational circuit is data independent: it is built from the query
// and the degree constraints only, and must evaluate correctly on every
// database instance conforming to those constraints. The package provides
// a builder, a reference evaluator (with optional verification that every
// wire conforms to its declared bounds), and the paper's cost model,
// which the oblivious compiler (package core) matches gate by gate.
package relcircuit

import (
	"context"
	"fmt"
	"math"

	"circuitql/internal/expr"
	"circuitql/internal/faultinject"
	"circuitql/internal/guard"
	"circuitql/internal/obs"
	"circuitql/internal/relation"
)

// DegBound asserts deg_On(R) ≤ N for the relation on a wire.
type DegBound struct {
	On []string
	N  float64
}

// Bound describes the constraints declared on a wire: a cardinality bound
// and any number of degree bounds.
type Bound struct {
	Card float64
	Degs []DegBound
}

// Card returns a bound with only a cardinality constraint.
func Card(n float64) Bound { return Bound{Card: n} }

// WithDeg returns a copy of b with an additional degree bound.
func (b Bound) WithDeg(on []string, n float64) Bound {
	degs := make([]DegBound, 0, len(b.Degs)+1)
	degs = append(degs, b.Degs...)
	degs = append(degs, DegBound{On: append([]string(nil), on...), N: n})
	return Bound{Card: b.Card, Degs: degs}
}

// DegOn returns the tightest declared degree bound applicable to the
// attribute set attrs: the minimum over declared bounds whose On set is
// contained in attrs (conditioning on more attributes cannot increase the
// degree), defaulting to the cardinality bound.
func (b Bound) DegOn(attrs []string) float64 {
	best := b.Card
	set := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		set[a] = true
	}
	for _, d := range b.Degs {
		ok := true
		for _, a := range d.On {
			if !set[a] {
				ok = false
				break
			}
		}
		if ok && d.N < best {
			best = d.N
		}
	}
	return best
}

// Kind enumerates relational gate kinds.
type Kind int

// Gate kinds.
const (
	KindInput Kind = iota
	KindSelect
	KindProject
	KindJoin
	KindUnion
	KindAgg
	KindOrder
	KindMap
	KindCap
)

// String returns the gate-kind name.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindSelect:
		return "σ"
	case KindProject:
		return "Π"
	case KindJoin:
		return "⋈"
	case KindUnion:
		return "∪"
	case KindAgg:
		return "Πagg"
	case KindOrder:
		return "τ"
	case KindMap:
		return "ρ"
	case KindCap:
		return "cap"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MapExpr is one output column of a map gate.
type MapExpr struct {
	As string
	E  expr.Expr
}

// Gate is one node of a relational circuit.
type Gate struct {
	ID     int
	Kind   Kind
	In     []int    // input gate ids (all < ID)
	Schema []string // output schema
	Out    Bound    // declared bound on the output wire
	Label  string   // human-readable annotation for debugging/rendering

	// Kind-specific parameters.
	Name     string           // KindInput: relation name in the database
	Pred     expr.Expr        // KindSelect
	Attrs    []string         // KindProject: kept attrs; KindOrder: sort keys
	GroupBy  []string         // KindAgg
	AggKind  relation.AggKind // KindAgg
	AggOver  string           // KindAgg (ignored for count)
	AggAs    string           // KindAgg: output column name
	MapExprs []MapExpr        // KindMap
}

// Circuit is a relational circuit: gates in topological order plus
// designated outputs.
type Circuit struct {
	Gates   []Gate
	Outputs []int
}

// New returns an empty circuit.
func New() *Circuit { return &Circuit{} }

func (c *Circuit) push(g Gate) int {
	g.ID = len(c.Gates)
	for _, in := range g.In {
		if in < 0 || in >= g.ID {
			panic(fmt.Sprintf("relcircuit: gate %d reads from invalid gate %d", g.ID, in))
		}
	}
	c.Gates = append(c.Gates, g)
	return g.ID
}

func (c *Circuit) schemaOf(id int) []string { return c.Gates[id].Schema }

func hasAttr(schema []string, a string) bool {
	for _, s := range schema {
		if s == a {
			return true
		}
	}
	return false
}

func commonAttrs(a, b []string) []string {
	var out []string
	for _, x := range a {
		if hasAttr(b, x) {
			out = append(out, x)
		}
	}
	return out
}

func joinSchema(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, x := range b {
		if !hasAttr(a, x) {
			out = append(out, x)
		}
	}
	return out
}

// Input adds an input gate reading the named relation; its declared bound
// is part of the circuit's contract with the data.
func (c *Circuit) Input(name string, schema []string, b Bound) int {
	return c.push(Gate{Kind: KindInput, Name: name, Schema: append([]string(nil), schema...), Out: b, Label: name})
}

// Select adds σ_pred over gate in. The predicate must only read input
// attributes.
func (c *Circuit) Select(in int, pred expr.Expr, b Bound) int {
	schema := c.schemaOf(in)
	for _, a := range expr.Attrs(pred) {
		if !hasAttr(schema, a) {
			panic(fmt.Sprintf("relcircuit: selection predicate reads %q not in schema %v", a, schema))
		}
	}
	return c.push(Gate{Kind: KindSelect, In: []int{in}, Pred: pred, Schema: append([]string(nil), schema...), Out: b,
		Label: fmt.Sprintf("σ[%s]", pred)})
}

// Project adds Π_attrs over gate in.
func (c *Circuit) Project(in int, attrs []string, b Bound) int {
	schema := c.schemaOf(in)
	for _, a := range attrs {
		if !hasAttr(schema, a) {
			panic(fmt.Sprintf("relcircuit: projection attr %q not in schema %v", a, schema))
		}
	}
	return c.push(Gate{Kind: KindProject, In: []int{in}, Attrs: append([]string(nil), attrs...),
		Schema: append([]string(nil), attrs...), Out: b, Label: fmt.Sprintf("Π%v", attrs)})
}

// Join adds the natural join of gates r and s. By the paper's cost model
// the first input plays the role of R (|R| ≤ M) and the second of S
// (deg_F(S) ≤ N, |S| ≤ N', F the common attributes).
func (c *Circuit) Join(r, s int, b Bound) int {
	schema := joinSchema(c.schemaOf(r), c.schemaOf(s))
	return c.push(Gate{Kind: KindJoin, In: []int{r, s}, Schema: schema, Out: b,
		Label: fmt.Sprintf("⋈%v", commonAttrs(c.schemaOf(r), c.schemaOf(s)))})
}

// Union adds r ∪ s; the inputs must have the same attribute set.
func (c *Circuit) Union(r, s int, b Bound) int {
	rs, ss := c.schemaOf(r), c.schemaOf(s)
	if len(rs) != len(ss) {
		panic(fmt.Sprintf("relcircuit: union schema mismatch %v vs %v", rs, ss))
	}
	for _, a := range rs {
		if !hasAttr(ss, a) {
			panic(fmt.Sprintf("relcircuit: union schema mismatch %v vs %v", rs, ss))
		}
	}
	return c.push(Gate{Kind: KindUnion, In: []int{r, s}, Schema: append([]string(nil), rs...), Out: b, Label: "∪"})
}

// Agg adds the group-by aggregation Π_{group, agg(over) as as}.
func (c *Circuit) Agg(in int, group []string, kind relation.AggKind, over, as string, b Bound) int {
	schema := c.schemaOf(in)
	for _, a := range group {
		if !hasAttr(schema, a) {
			panic(fmt.Sprintf("relcircuit: group attr %q not in schema %v", a, schema))
		}
	}
	if kind != relation.AggCount && !hasAttr(schema, over) {
		panic(fmt.Sprintf("relcircuit: aggregate attr %q not in schema %v", over, schema))
	}
	out := append(append([]string(nil), group...), as)
	return c.push(Gate{Kind: KindAgg, In: []int{in}, GroupBy: append([]string(nil), group...),
		AggKind: kind, AggOver: over, AggAs: as, Schema: out, Out: b,
		Label: fmt.Sprintf("Π%v,%s(%s)", group, kind, over)})
}

// Order adds the ordering operator τ_attrs, appending the position column
// relation.OrderAttr to the schema.
func (c *Circuit) Order(in int, attrs []string, b Bound) int {
	schema := c.schemaOf(in)
	for _, a := range attrs {
		if !hasAttr(schema, a) {
			panic(fmt.Sprintf("relcircuit: order attr %q not in schema %v", a, schema))
		}
	}
	if hasAttr(schema, relation.OrderAttr) {
		panic("relcircuit: ordering a relation that already has an order column")
	}
	out := append(append([]string(nil), schema...), relation.OrderAttr)
	return c.push(Gate{Kind: KindOrder, In: []int{in}, Attrs: append([]string(nil), attrs...),
		Schema: out, Out: b, Label: fmt.Sprintf("τ%v", attrs)})
}

// Map adds the map operator ρ: one output column per expression.
func (c *Circuit) Map(in int, exprs []MapExpr, b Bound) int {
	schema := c.schemaOf(in)
	var out []string
	for _, me := range exprs {
		for _, a := range expr.Attrs(me.E) {
			if !hasAttr(schema, a) {
				panic(fmt.Sprintf("relcircuit: map expression reads %q not in schema %v", a, schema))
			}
		}
		out = append(out, me.As)
	}
	return c.push(Gate{Kind: KindMap, In: []int{in}, MapExprs: append([]MapExpr(nil), exprs...),
		Schema: out, Out: b, Label: "ρ"})
}

// Cap adds the truncation operator of Section 5.3: the relational
// identity with a smaller declared cardinality bound. The caller asserts
// that every conforming instance fits the new bound; the oblivious
// compiler realizes it as sort-dummies-last plus discarding trailing
// slots, shrinking downstream circuit capacity.
func (c *Circuit) Cap(in int, b Bound) int {
	schema := c.schemaOf(in)
	return c.push(Gate{Kind: KindCap, In: []int{in}, Schema: append([]string(nil), schema...), Out: b,
		Label: fmt.Sprintf("cap[%g]", b.Card)})
}

// MarkOutput designates gate id as a circuit output.
func (c *Circuit) MarkOutput(id int) {
	if id < 0 || id >= len(c.Gates) {
		panic("relcircuit: invalid output gate")
	}
	c.Outputs = append(c.Outputs, id)
}

// Size returns the number of gates (the paper's circuit size at the
// relational level, which Theorem 3 bounds by Õ(1)).
func (c *Circuit) Size() int { return len(c.Gates) }

// Depth returns the longest input-to-output path length in gates.
func (c *Circuit) Depth() int {
	depth := make([]int, len(c.Gates))
	maxDepth := 0
	for i, g := range c.Gates {
		d := 0
		for _, in := range g.In {
			if depth[in] > d {
				d = depth[in]
			}
		}
		if g.Kind != KindInput {
			d++
		}
		depth[i] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	return maxDepth
}

// GateCost returns the paper's cost of gate g (Section 4.3, bounded-wire
// cost model): selection/projection/aggregation/ordering/map cost N (the
// input cardinality bound); union costs M+N; a join of R (|R| ≤ M) with S
// (deg_F(S) ≤ N, |S| ≤ N') costs M·N + N'. Inputs are free.
func (c *Circuit) GateCost(g Gate) float64 {
	switch g.Kind {
	case KindInput:
		return 0
	case KindSelect, KindProject, KindAgg, KindOrder, KindMap, KindCap:
		return c.Gates[g.In[0]].Out.Card
	case KindUnion:
		return c.Gates[g.In[0]].Out.Card + c.Gates[g.In[1]].Out.Card
	case KindJoin:
		r, s := c.Gates[g.In[0]], c.Gates[g.In[1]]
		f := commonAttrs(r.Schema, s.Schema)
		return r.Out.Card*s.Out.DegOn(f) + s.Out.Card
	}
	panic(fmt.Sprintf("relcircuit: unknown gate kind %v", g.Kind))
}

// Cost returns the total cost of the circuit: the sum of all gate costs
// on the declared bounds (instance independent).
func (c *Circuit) Cost() float64 {
	total := 0.0
	for _, g := range c.Gates {
		total += c.GateCost(g)
	}
	return total
}

// Stats summarizes a circuit.
type Stats struct {
	Gates int
	Depth int
	Cost  float64
}

// Stats returns gate count, depth, and total cost.
func (c *Circuit) StatsOf() Stats {
	return Stats{Gates: c.Size(), Depth: c.Depth(), Cost: c.Cost()}
}

// String renders the circuit gate list for debugging.
func (c *Circuit) String() string {
	s := ""
	for _, g := range c.Gates {
		s += fmt.Sprintf("g%d: %s %s in=%v schema=%v card≤%.6g\n", g.ID, g.Kind, g.Label, g.In, g.Schema, g.Out.Card)
	}
	s += fmt.Sprintf("outputs=%v", c.Outputs)
	return s
}

// boundViolation describes a wire whose relation exceeds its declared
// bound during checked evaluation.
type boundViolation struct {
	gate int
	msg  string
}

func (e *boundViolation) Error() string {
	return fmt.Sprintf("relcircuit: gate %d violates declared bound: %s", e.gate, e.msg)
}

func checkBound(id int, r *relation.Relation, b Bound) error {
	if float64(r.Len()) > b.Card+1e-9 {
		return &boundViolation{gate: id, msg: fmt.Sprintf("|R| = %d > %g", r.Len(), b.Card)}
	}
	for _, d := range b.Degs {
		ok := true
		for _, a := range d.On {
			if !r.HasAttr(a) {
				ok = false // degree bound on attrs absent from the wire: vacuous
				break
			}
		}
		if !ok {
			continue
		}
		if got := float64(r.Degree(d.On...)); got > d.N+1e-9 {
			return &boundViolation{gate: id, msg: fmt.Sprintf("deg_%v = %g > %g", d.On, got, d.N)}
		}
	}
	return nil
}

// Evaluate runs the circuit on db: each input gate reads db[gate.Name],
// which must carry exactly the gate's attribute set. When check is true,
// every wire (including inputs) is verified against its declared bound,
// and a violation aborts evaluation — this is how tests establish that
// the compiler's bound bookkeeping is sound. The result maps output gate
// ids to relations.
func (c *Circuit) Evaluate(db map[string]*relation.Relation, check bool) (map[int]*relation.Relation, error) {
	return c.EvaluateCtx(context.Background(), db, check)
}

// EvaluateCtx is Evaluate under a context: the gate loop polls ctx,
// charges each materialised wire against any guard.Budget row cap, and
// reports each gate to any faultinject.Injector carried by ctx. The
// whole pass runs under one obs relcircuit-eval span counting gates
// evaluated and rows materialized (the spans are per evaluation, never
// per gate, so tracing costs nothing on the gate loop).
func (c *Circuit) EvaluateCtx(ctx context.Context, db map[string]*relation.Relation, check bool) (_ map[int]*relation.Relation, err error) {
	ctx, sp := obs.StartSpan(ctx, obs.StageRelEval)
	rows := int64(0)
	defer func() {
		sp.AddInt(obs.CounterRelGates, int64(len(c.Gates)))
		sp.AddInt(obs.CounterRows, rows)
		sp.SetError(err)
		sp.End()
	}()
	budget := guard.FromContext(ctx)
	inj := faultinject.FromContext(ctx)
	vals := make([]*relation.Relation, len(c.Gates))
	for i, g := range c.Gates {
		if err := guard.Poll(ctx); err != nil {
			return nil, err
		}
		if err := inj.Hit(faultinject.SiteRelGate); err != nil {
			return nil, fmt.Errorf("relcircuit: gate %d: %w", i, err)
		}
		var out *relation.Relation
		switch g.Kind {
		case KindInput:
			r, ok := db[g.Name]
			if !ok {
				return nil, fmt.Errorf("relcircuit: database missing relation %q", g.Name)
			}
			for _, a := range g.Schema {
				if !r.HasAttr(a) {
					return nil, fmt.Errorf("relcircuit: relation %q lacks attribute %q", g.Name, a)
				}
			}
			if r.Arity() != len(g.Schema) {
				return nil, fmt.Errorf("relcircuit: relation %q has arity %d, want %d", g.Name, r.Arity(), len(g.Schema))
			}
			out = r
		case KindSelect:
			in := vals[g.In[0]]
			pred := g.Pred
			out = in.Select(func(t relation.Tuple) bool {
				return pred.Eval(func(a string) int64 { return in.Value(t, a) }) != 0
			})
		case KindProject:
			out = vals[g.In[0]].Project(g.Attrs...)
		case KindJoin:
			out = vals[g.In[0]].NaturalJoin(vals[g.In[1]])
		case KindUnion:
			out = vals[g.In[0]].Union(vals[g.In[1]])
		case KindAgg:
			out = vals[g.In[0]].Aggregate(g.GroupBy, g.AggKind, g.AggOver, g.AggAs)
		case KindOrder:
			out = vals[g.In[0]].Order(g.Attrs...)
		case KindCap:
			out = vals[g.In[0]]
		case KindMap:
			in := vals[g.In[0]]
			out = relation.New(g.Schema...)
			row := make([]int64, len(g.MapExprs))
			in.Each(func(t relation.Tuple) {
				for k, me := range g.MapExprs {
					row[k] = me.E.Eval(func(a string) int64 { return in.Value(t, a) })
				}
				out.Insert(row...)
			})
		default:
			return nil, fmt.Errorf("relcircuit: unknown gate kind %v", g.Kind)
		}
		if err := budget.CheckRows(out.Len()); err != nil {
			return nil, fmt.Errorf("relcircuit: gate %d: %w", i, err)
		}
		if check {
			if err := checkBound(i, out, g.Out); err != nil {
				return nil, err
			}
		}
		rows += int64(out.Len())
		vals[i] = out
	}
	res := make(map[int]*relation.Relation, len(c.Outputs))
	for _, id := range c.Outputs {
		res[id] = vals[id]
	}
	return res, nil
}

// Ceil rounds a bound value up to an integer capacity (used when sizing
// oblivious wire bundles).
func Ceil(v float64) int {
	c := int(math.Ceil(v - 1e-9))
	if c < 1 {
		c = 1
	}
	return c
}
