package relcircuit

// Prune returns a copy of the circuit containing only gates reachable
// from its outputs (plus every input gate, which represents a relation
// the evaluator must accept), with ids renumbered, and the mapping from
// old gate ids to new ones. PANDA-C's truncation path abandons the
// partially-built gates of plans it restarts away from; pruning before
// the oblivious lowering keeps the word-gate count proportional to the
// gates that matter.
func (c *Circuit) Prune() (*Circuit, map[int]int) {
	live := make([]bool, len(c.Gates))
	var mark func(int)
	mark = func(id int) {
		if live[id] {
			return
		}
		live[id] = true
		for _, in := range c.Gates[id].In {
			mark(in)
		}
	}
	for _, o := range c.Outputs {
		mark(o)
	}
	for _, g := range c.Gates {
		if g.Kind == KindInput {
			live[g.ID] = true
		}
	}

	out := New()
	mapping := make(map[int]int, len(c.Gates))
	for _, g := range c.Gates {
		if !live[g.ID] {
			continue
		}
		ng := g // copy
		ng.In = make([]int, len(g.In))
		for i, in := range g.In {
			ng.In[i] = mapping[in]
		}
		mapping[g.ID] = out.push(ng)
	}
	for _, o := range c.Outputs {
		out.Outputs = append(out.Outputs, mapping[o])
	}
	return out, mapping
}
