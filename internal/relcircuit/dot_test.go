package relcircuit

import (
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	c := New()
	r := c.Input("R", []string{"A", "B"}, Card(4))
	s := c.Input("S", []string{"B", "C"}, Card(4))
	j := c.Join(r, s, Card(16))
	c.MarkOutput(j)
	var sb strings.Builder
	if err := c.WriteDot(&sb, "test"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph \"test\"",
		"g0 ", "g1 ", "g2 ",
		"g0 -> g2", "g1 -> g2",
		"peripheries=2",       // output marker
		"fillcolor=lightgrey", // input marker
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDotEscapes(t *testing.T) {
	c := New()
	g := c.Input(`R"x`, []string{"A"}, Card(1))
	c.MarkOutput(g)
	var sb strings.Builder
	if err := c.WriteDot(&sb, ""); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `R"x\n`) {
		t.Fatal("quote not escaped")
	}
}
