package relcircuit

import (
	"strings"
	"testing"

	"circuitql/internal/expr"
	"circuitql/internal/relation"
)

func db2(t *testing.T) map[string]*relation.Relation {
	t.Helper()
	r := relation.New("A", "B")
	r.Insert(1, 10)
	r.Insert(2, 10)
	r.Insert(3, 30)
	s := relation.New("B", "C")
	s.Insert(10, 100)
	s.Insert(10, 200)
	s.Insert(30, 300)
	return map[string]*relation.Relation{"R": r, "S": s}
}

func TestSelectProjectJoinEvaluate(t *testing.T) {
	c := New()
	r := c.Input("R", []string{"A", "B"}, Card(3))
	s := c.Input("S", []string{"B", "C"}, Card(3))
	sel := c.Select(r, expr.Lt(expr.Attr("A"), expr.Const(3)), Card(3))
	j := c.Join(sel, s, Card(9))
	p := c.Project(j, []string{"A", "C"}, Card(9))
	c.MarkOutput(p)

	out, err := c.Evaluate(db2(t), true)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromTuples([]string{"A", "C"},
		relation.Tuple{1, 100}, relation.Tuple{1, 200},
		relation.Tuple{2, 100}, relation.Tuple{2, 200})
	if !out[p].Equal(want) {
		t.Fatalf("output = %v, want %v", out[p], want)
	}
}

func TestBoundViolationDetected(t *testing.T) {
	c := New()
	r := c.Input("R", []string{"A", "B"}, Card(2)) // actual has 3 tuples
	c.MarkOutput(r)
	if _, err := c.Evaluate(db2(t), true); err == nil {
		t.Fatal("expected cardinality bound violation")
	}
	// Unchecked evaluation succeeds.
	if _, err := c.Evaluate(db2(t), false); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeBoundViolation(t *testing.T) {
	c := New()
	s := c.Input("S", []string{"B", "C"}, Card(3).WithDeg([]string{"B"}, 1)) // deg_B = 2 actually
	c.MarkOutput(s)
	if _, err := c.Evaluate(db2(t), true); err == nil {
		t.Fatal("expected degree bound violation")
	}
}

func TestDegOnUsesTightestApplicable(t *testing.T) {
	b := Card(100).WithDeg([]string{"B"}, 5).WithDeg([]string{"B", "C"}, 3)
	if got := b.DegOn([]string{"B", "C", "D"}); got != 3 {
		t.Fatalf("DegOn(BCD) = %g, want 3", got)
	}
	if got := b.DegOn([]string{"B"}); got != 5 {
		t.Fatalf("DegOn(B) = %g, want 5", got)
	}
	if got := b.DegOn([]string{"C"}); got != 100 {
		t.Fatalf("DegOn(C) = %g, want card 100", got)
	}
}

func TestJoinCostModel(t *testing.T) {
	c := New()
	r := c.Input("R", []string{"A", "B"}, Card(8))
	s := c.Input("S", []string{"B", "C"}, Card(20).WithDeg([]string{"B"}, 2))
	j := c.Join(r, s, Card(16))
	_ = j
	g := c.Gates[j]
	// Cost = M·N + N' = 8·2 + 20 = 36.
	if got := c.GateCost(g); got != 36 {
		t.Fatalf("join cost = %g, want 36", got)
	}
	// Without the degree bound the model falls back to deg ≤ card.
	c2 := New()
	r2 := c2.Input("R", []string{"A", "B"}, Card(8))
	s2 := c2.Input("S", []string{"B", "C"}, Card(20))
	j2 := c2.Join(r2, s2, Card(160))
	if got := c2.GateCost(c2.Gates[j2]); got != 8*20+20 {
		t.Fatalf("join cost = %g, want 180", got)
	}
}

func TestUnaryAndUnionCosts(t *testing.T) {
	c := New()
	r := c.Input("R", []string{"A", "B"}, Card(7))
	s := c.Input("S2", []string{"A", "B"}, Card(5))
	sel := c.Select(r, expr.Const(1), Card(7))
	u := c.Union(sel, s, Card(12))
	if got := c.GateCost(c.Gates[sel]); got != 7 {
		t.Fatalf("select cost = %g", got)
	}
	if got := c.GateCost(c.Gates[u]); got != 12 {
		t.Fatalf("union cost = %g", got)
	}
	if got := c.Cost(); got != 19 {
		t.Fatalf("total cost = %g, want 19", got)
	}
}

func TestOrderGate(t *testing.T) {
	c := New()
	r := c.Input("R", []string{"A", "B"}, Card(3))
	o := c.Order(r, []string{"B"}, Card(3))
	c.MarkOutput(o)
	out, err := c.Evaluate(db2(t), true)
	if err != nil {
		t.Fatal(err)
	}
	res := out[o]
	if !res.HasAttr(relation.OrderAttr) {
		t.Fatal("order column missing")
	}
	// (1,10) and (2,10) sort before (3,30); positions 1..3.
	if !res.Has(1, 10, 1) || !res.Has(2, 10, 2) || !res.Has(3, 30, 3) {
		t.Fatalf("order = %v", res)
	}
}

func TestAggGate(t *testing.T) {
	c := New()
	s := c.Input("S", []string{"B", "C"}, Card(3))
	a := c.Agg(s, []string{"B"}, relation.AggCount, "", "count", Card(3))
	c.MarkOutput(a)
	out, err := c.Evaluate(db2(t), true)
	if err != nil {
		t.Fatal(err)
	}
	if !out[a].Has(10, 2) || !out[a].Has(30, 1) {
		t.Fatalf("agg = %v", out[a])
	}
}

func TestMapGate(t *testing.T) {
	c := New()
	r := c.Input("R", []string{"A", "B"}, Card(3))
	m := c.Map(r, []MapExpr{
		{As: "A", E: expr.Attr("A")},
		{As: "double", E: expr.Mul(expr.Attr("B"), expr.Const(2))},
	}, Card(3))
	c.MarkOutput(m)
	out, err := c.Evaluate(db2(t), true)
	if err != nil {
		t.Fatal(err)
	}
	if !out[m].Has(1, 20) || !out[m].Has(3, 60) {
		t.Fatalf("map = %v", out[m])
	}
}

func TestDepthAndSize(t *testing.T) {
	c := New()
	r := c.Input("R", []string{"A", "B"}, Card(3))
	s := c.Input("S", []string{"B", "C"}, Card(3))
	j := c.Join(r, s, Card(9))
	p := c.Project(j, []string{"A"}, Card(9))
	c.MarkOutput(p)
	if c.Size() != 4 {
		t.Fatalf("Size = %d", c.Size())
	}
	if c.Depth() != 2 {
		t.Fatalf("Depth = %d", c.Depth())
	}
	st := c.StatsOf()
	if st.Gates != 4 || st.Depth != 2 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []func(){
		func() {
			c := New()
			r := c.Input("R", []string{"A"}, Card(1))
			c.Project(r, []string{"Z"}, Card(1))
		},
		func() {
			c := New()
			r := c.Input("R", []string{"A"}, Card(1))
			s := c.Input("S", []string{"B"}, Card(1))
			c.Union(r, s, Card(2))
		},
		func() {
			c := New()
			r := c.Input("R", []string{"A"}, Card(1))
			c.Select(r, expr.Attr("Z"), Card(1))
		},
		func() {
			c := New()
			r := c.Input("R", []string{"A"}, Card(1))
			c.Agg(r, []string{"A"}, relation.AggSum, "Z", "s", Card(1))
		},
		func() {
			c := New()
			c.MarkOutput(7)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMissingRelation(t *testing.T) {
	c := New()
	g := c.Input("Missing", []string{"A"}, Card(1))
	c.MarkOutput(g)
	if _, err := c.Evaluate(map[string]*relation.Relation{}, false); err == nil {
		t.Fatal("expected missing relation error")
	}
}

func TestStringRendering(t *testing.T) {
	c := New()
	r := c.Input("R", []string{"A", "B"}, Card(3))
	c.MarkOutput(r)
	if s := c.String(); !strings.Contains(s, "g0: input R") {
		t.Fatalf("String = %q", s)
	}
}

func TestCeil(t *testing.T) {
	if Ceil(3.0000000001) != 3 || Ceil(3.5) != 4 || Ceil(0.2) != 1 {
		t.Fatal("Ceil wrong")
	}
}
