package baseline

import (
	"testing"

	"circuitql/internal/query"
	"circuitql/internal/workload"
)

func TestGenericJoinIndexedMatchesReference(t *testing.T) {
	for _, e := range []query.CatalogEntry{
		{Name: "triangle", Query: query.Triangle()},
		{Name: "path3", Query: query.Path3()},
		{Name: "cycle4", Query: query.Cycle4()},
		{Name: "star3", Query: query.Star3()},
		{Name: "path2_projected", Query: query.Path2Projected()},
		{Name: "loomis_whitney4", Query: query.LoomisWhitney4()},
	} {
		q := e.Query
		db := workload.ForQuery(q, 31, 20)
		got, err := GenericJoinIndexed(q, db)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		want, err := query.Evaluate(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: indexed generic join %v ≠ %v", e.Name, got, want)
		}
	}
}

func TestGenericJoinIndexedWorstCase(t *testing.T) {
	q := query.Triangle()
	db := workload.WorstCaseTriangle(64) // 8×8 grids, 512 triangles
	got, err := GenericJoinIndexed(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 512 {
		t.Fatalf("triangles = %d, want 512", got.Len())
	}
}

func TestGenericJoinIndexedSelfJoin(t *testing.T) {
	q := query.MustParse("Q(A,B,C) :- E(A,B), E(B,C)")
	db := workload.ForQuery(q, 17, 25)
	got, err := GenericJoinIndexed(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := query.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("self-join mismatch")
	}
}

func BenchmarkGenericJoinScan(b *testing.B) {
	q := query.Triangle()
	db := workload.TriangleDB(workload.TriangleUniform, 37, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenericJoin(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenericJoinIndexed(b *testing.B) {
	q := query.Triangle()
	db := workload.TriangleDB(workload.TriangleUniform, 37, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenericJoinIndexed(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinPlan(b *testing.B) {
	q := query.Triangle()
	db := workload.TriangleDB(workload.TriangleUniform, 37, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HashJoinPlan(q, db); err != nil {
			b.Fatal(err)
		}
	}
}
