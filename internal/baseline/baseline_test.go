package baseline

import (
	"math"
	"testing"

	"circuitql/internal/panda"
	"circuitql/internal/query"
	"circuitql/internal/workload"
)

func TestNaiveCircuitCorrect(t *testing.T) {
	q := query.Triangle()
	db := workload.TriangleDB(workload.TriangleUniform, 7, 20)
	dcs, err := query.DeriveDC(q, db)
	if err != nil {
		t.Fatal(err)
	}
	c, out, err := NaiveCircuit(q, dcs)
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := panda.PrepareDB(q, db)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := c.Evaluate(pdb, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := query.Evaluate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !vals[out].Equal(want) {
		t.Fatalf("naive circuit wrong: %v vs %v", vals[out], want)
	}
}

// TestNaiveCostIsNCubed: under uniform cardinalities the naive triangle
// circuit costs Θ(N³) — the SMCQL baseline the paper improves on.
func TestNaiveCostIsNCubed(t *testing.T) {
	q := query.Triangle()
	costFor := func(n float64) float64 {
		c, _, err := NaiveCircuit(q, query.Cardinalities(q, n))
		if err != nil {
			t.Fatal(err)
		}
		return c.Cost()
	}
	c16, c64 := costFor(16), costFor(64)
	ratio := c64 / c16
	// N³ growth: ratio 64; allow slack for the lower-order terms.
	if ratio < 40 || ratio > 80 {
		t.Fatalf("naive cost ratio %g, want ≈ 64 (cubic)", ratio)
	}
}

// TestHeavyLightTriangleCorrect: the Figure 1 circuit computes the
// triangle join on uniform, skewed, and worst-case data.
func TestHeavyLightTriangleCorrect(t *testing.T) {
	q := query.Triangle()
	for _, kind := range []workload.TriangleKind{
		workload.TriangleUniform, workload.TriangleSkewed, workload.TriangleWorstCase,
	} {
		db := workload.TriangleDB(kind, 11, 25)
		n := 0
		for _, r := range db {
			if r.Len() > n {
				n = r.Len()
			}
		}
		c, out := HeavyLightTriangle(float64(n))
		pdb, err := panda.PrepareDB(q, db)
		if err != nil {
			t.Fatal(err)
		}
		vals, err := c.Evaluate(pdb, true)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		want, err := query.Evaluate(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !vals[out].Equal(want) {
			t.Fatalf("kind %d: heavy/light wrong", kind)
		}
	}
}

// TestHeavyLightCostIsN15: Figure 1's cost is Θ(N^{3/2}).
func TestHeavyLightCostIsN15(t *testing.T) {
	cost := func(n float64) float64 {
		c, _ := HeavyLightTriangle(n)
		return c.Cost()
	}
	ratio := cost(4096) / cost(256)
	// (4096/256)^1.5 = 64.
	if ratio < 40 || ratio > 90 {
		t.Fatalf("heavy/light cost ratio %g, want ≈ 64", ratio)
	}
	// And it beats the naive circuit asymptotically.
	q := query.Triangle()
	naive, _, err := NaiveCircuit(q, query.Cardinalities(q, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if cost(4096) >= naive.Cost() {
		t.Fatalf("heavy/light (%g) should beat naive (%g) at N=4096", cost(4096), naive.Cost())
	}
}

func TestGenericJoinMatchesReference(t *testing.T) {
	for _, e := range []query.CatalogEntry{
		{Name: "triangle", Query: query.Triangle()},
		{Name: "path3", Query: query.Path3()},
		{Name: "cycle4", Query: query.Cycle4()},
		{Name: "path2_projected", Query: query.Path2Projected()},
	} {
		q := e.Query
		db := workload.ForQuery(q, 13, 18)
		got, err := GenericJoin(q, db)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		want, err := query.Evaluate(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: generic join %v ≠ %v", e.Name, got, want)
		}
	}
}

func TestGenericJoinWorstCase(t *testing.T) {
	q := query.Triangle()
	db := workload.WorstCaseTriangle(16) // 4×4 grids -> 64 triangles
	got, err := GenericJoin(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 64 {
		t.Fatalf("worst-case triangle count = %d, want 64", got.Len())
	}
	if math.Abs(math.Pow(16, 1.5)-float64(got.Len())) > 1 {
		t.Fatalf("output should be N^1.5")
	}
}

func TestNaiveCircuitErrors(t *testing.T) {
	q := query.Triangle()
	if _, _, err := NaiveCircuit(q, query.DCSet{}); err == nil {
		t.Fatal("expected missing cardinality error")
	}
}
