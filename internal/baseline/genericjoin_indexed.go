package baseline

import (
	"sort"

	"circuitql/internal/query"
	"circuitql/internal/relation"
)

// GenericJoinIndexed is the worst-case-optimal join with hash indexes:
// for every atom and every prefix of its variables (in global variable
// order) an index is built once, so extending a partial assignment costs
// O(1) per probe instead of a scan. This is the realistic RAM baseline
// the paper's running times refer to; GenericJoin (above) is the
// didactic scan-based version.
func GenericJoinIndexed(q *query.Query, db query.Database) (*relation.Relation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	n := q.NVars()

	// Per atom: the relation renamed to variable names, plus for each
	// prefix of its variables (sorted by global order) an index.
	type atomState struct {
		rel *relation.Relation
		// sortedVars: the atom's variables in ascending global order.
		sortedVars []int
		// prefixIdx[k]: index on the first k sorted variables (k ≥ 1);
		// prefixIdx[0] is nil (no restriction).
		prefixIdx []*relation.Index
	}
	atoms := make([]atomState, len(q.Atoms))
	for i, a := range q.Atoms {
		rel, err := query.AtomRelation(q, db, a)
		if err != nil {
			return nil, err
		}
		vars := append([]int(nil), a.Vars...)
		sort.Ints(vars)
		vars = dedupInts(vars)
		st := atomState{rel: rel, sortedVars: vars, prefixIdx: make([]*relation.Index, len(vars)+1)}
		for k := 1; k <= len(vars); k++ {
			names := make([]string, k)
			for j := 0; j < k; j++ {
				names[j] = q.VarNames[vars[j]]
			}
			st.prefixIdx[k] = rel.BuildIndex(names...)
		}
		atoms[i] = st
	}

	out := relation.New(q.VarNames...)
	assignment := make([]int64, n)

	// boundPrefix returns how many of the atom's sorted variables are
	// below v (hence bound when extending variable v in index order).
	boundPrefix := func(st atomState, v int) int {
		k := 0
		for _, u := range st.sortedVars {
			if u < v {
				k++
			}
		}
		return k
	}

	var rec func(v int)
	rec = func(v int) {
		if v == n {
			out.Insert(assignment...)
			return
		}
		// Candidate values: intersect over atoms containing v, seeded by
		// the atom with the fewest matching tuples.
		type holder struct {
			st atomState
			k  int // bound prefix length
		}
		var holders []holder
		for i, a := range q.Atoms {
			if a.VarSet().Has(v) {
				holders = append(holders, holder{atoms[i], boundPrefix(atoms[i], v)})
			}
		}
		if len(holders) == 0 {
			return
		}
		// Pick the holder with the fewest matching tuples under the
		// current assignment.
		bestCount := -1
		var best holder
		keys := make([][]int64, len(holders))
		for i, h := range holders {
			key := make([]int64, h.k)
			for j := 0; j < h.k; j++ {
				key[j] = assignment[h.st.sortedVars[j]]
			}
			keys[i] = key
			var cnt int
			if h.k == 0 {
				cnt = h.st.rel.Len()
			} else {
				cnt = h.st.prefixIdx[h.k].Count(key)
			}
			if bestCount < 0 || cnt < bestCount {
				bestCount, best = cnt, h
			}
		}
		if bestCount == 0 {
			return
		}
		// Candidates from the seed holder.
		seen := map[int64]bool{}
		var candidates []int64
		collect := func(t relation.Tuple) {
			val := best.st.rel.Value(t, q.VarNames[v])
			if !seen[val] {
				seen[val] = true
				candidates = append(candidates, val)
			}
		}
		if best.k == 0 {
			best.st.rel.Each(collect)
		} else {
			key := make([]int64, best.k)
			for j := 0; j < best.k; j++ {
				key[j] = assignment[best.st.sortedVars[j]]
			}
			best.st.prefixIdx[best.k].Lookup(key, collect)
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

		for _, cand := range candidates {
			assignment[v] = cand
			ok := true
			for i, h := range holders {
				// The atom's prefix including v must be non-empty.
				k := h.k
				if k < len(h.st.sortedVars) && h.st.sortedVars[k] == v {
					probe := append(append([]int64(nil), keys[i]...), cand)
					if h.st.prefixIdx[k+1].Count(probe) == 0 {
						ok = false
						break
					}
				}
			}
			if ok {
				rec(v + 1)
			}
		}
	}
	rec(0)
	return out.Project(q.Free.Names(q.VarNames)...), nil
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
