// Package baseline implements the comparison points the paper measures
// against:
//
//   - the naive Õ(N^m) circuit (the classical construction of [1] and the
//     circuit SMCQL uses [10]): an m-way product with selection;
//   - the hand-built heavy/light relational circuit for the triangle
//     query from Figure 1, with cost O(N^{3/2});
//   - worst-case-optimal Generic Join in the RAM model [28, 31] and a
//     left-deep hash-join plan, used as reference RAM algorithms.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"circuitql/internal/expr"
	"circuitql/internal/panda"
	"circuitql/internal/query"
	"circuitql/internal/relation"
	"circuitql/internal/relcircuit"
)

// NaiveCircuit builds the classical circuit: join the atoms in order with
// no degree information, so every join is costed (and, obliviously,
// sized) at the full product, yielding total cost Θ(Π N_F) = Θ(N^m)
// under uniform cardinalities. The output gate computes Q(D) exactly.
func NaiveCircuit(q *query.Query, dcs query.DCSet) (*relcircuit.Circuit, int, error) {
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	if err := dcs.Validate(q); err != nil {
		return nil, 0, err
	}
	c := relcircuit.New()
	inputs := panda.BuildInputs(c, q, dcs)
	// Strip degree information: the naive circuit ignores it.
	cur := -1
	curCard := 1.0
	for i := range q.Atoms {
		in := inputs[i]
		card := c.Gates[in].Out.Card
		if math.IsInf(card, 0) {
			return nil, 0, fmt.Errorf("baseline: atom %d lacks a cardinality constraint", i)
		}
		if cur < 0 {
			cur, curCard = in, card
			continue
		}
		curCard *= card
		cur = c.Join(cur, in, relcircuit.Card(curCard))
	}
	out := c.Project(cur, q.Free.Names(q.VarNames), relcircuit.Card(curCard))
	c.MarkOutput(out)
	return c, out, nil
}

// HeavyLightTriangle builds the hand-designed relational circuit of
// Figure 1 for Q△ under uniform cardinality constraints N: values of C
// are split into heavy (degree > √N in S_BC) and light; the light side
// joins T_AC with the degree-bounded light part of S and verifies
// against R_AB; the heavy side crosses R_AB with the at-most-√N heavy C
// values and verifies against S and T. Every gate costs O(N^{3/2}).
// The returned circuit expects the database keys of panda.PrepareDB for
// the catalog triangle.
func HeavyLightTriangle(n float64) (*relcircuit.Circuit, int) {
	q := query.Triangle()
	c := relcircuit.New()
	sqrtN := math.Ceil(math.Sqrt(n))

	rAB := c.Input(panda.InputName(q, 0), []string{"A", "B"}, relcircuit.Card(n).WithDeg([]string{"A", "B"}, 1))
	sBC := c.Input(panda.InputName(q, 1), []string{"B", "C"}, relcircuit.Card(n).WithDeg([]string{"B", "C"}, 1))
	tAC := c.Input(panda.InputName(q, 2), []string{"A", "C"}, relcircuit.Card(n).WithDeg([]string{"A", "C"}, 1))

	// Degree of each C value in S.
	cnt := c.Agg(sBC, []string{"C"}, relation.AggCount, "", "count",
		relcircuit.Card(n).WithDeg([]string{"C"}, 1))
	sCnt := c.Join(sBC, cnt, relcircuit.Card(n))

	// Light side: deg_C(S_light) ≤ √N, so T ⋈ S_light ≤ N^{3/2}.
	lightSel := c.Select(sCnt, expr.Le(expr.Attr("count"), expr.Const(int64(sqrtN))), relcircuit.Card(n))
	sLight := c.Project(lightSel, []string{"B", "C"},
		relcircuit.Card(n).WithDeg([]string{"C"}, sqrtN).WithDeg([]string{"B", "C"}, 1))
	lightJoin := c.Join(tAC, sLight, relcircuit.Card(n*sqrtN))
	lightOut := c.Join(lightJoin, rAB, relcircuit.Card(n*sqrtN))

	// Heavy side: at most √N heavy C values; cross with R_AB then verify.
	heavySel := c.Select(sCnt, expr.Gt(expr.Attr("count"), expr.Const(int64(sqrtN))), relcircuit.Card(n))
	heavyC := c.Project(heavySel, []string{"C"}, relcircuit.Card(sqrtN).WithDeg([]string{"C"}, 1))
	heavyCross := c.Join(rAB, heavyC, relcircuit.Card(n*sqrtN))
	heavyS := c.Join(heavyCross, sBC, relcircuit.Card(n*sqrtN))
	heavyOut := c.Join(heavyS, tAC, relcircuit.Card(n*sqrtN))

	out := c.Union(lightOut, heavyOut, relcircuit.Card(2*n*sqrtN))
	out = c.Cap(out, relcircuit.Card(math.Pow(n, 1.5)))
	c.MarkOutput(out)
	return c, out
}

// GenericJoin computes the full query with the worst-case-optimal
// attribute-at-a-time algorithm [28, 31]: variables are processed in
// index order; at each step the candidate values for the next variable
// are drawn from the atom with the fewest matching tuples and verified
// against every other atom containing the variable.
func GenericJoin(q *query.Query, db query.Database) (*relation.Relation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	rels := make([]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		r, err := query.AtomRelation(q, db, a)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	n := q.NVars()
	out := relation.New(q.VarNames...)
	assignment := make([]int64, n)

	var rec func(v int)
	rec = func(v int) {
		if v == n {
			out.Insert(assignment...)
			return
		}
		name := q.VarNames[v]
		// Restrict every atom containing v by the current assignment and
		// pick the smallest candidate set.
		var candidates []int64
		first := true
		for _, r := range restricted(q, rels, assignment, v) {
			vals := r.Project(name)
			if first || vals.Len() < len(candidates) {
				candidates = candidates[:0]
				vals.Each(func(t relation.Tuple) { candidates = append(candidates, t[0]) })
				first = false
			}
		}
		if first {
			// No atom contains v (cannot happen for validated queries).
			return
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
		for _, cand := range candidates {
			assignment[v] = cand
			if consistent(q, rels, assignment, v) {
				rec(v + 1)
			}
		}
	}
	rec(0)
	return out.Project(q.Free.Names(q.VarNames)...), nil
}

// restricted returns, for each atom containing variable v, its tuples
// matching the assignment of variables < v.
func restricted(q *query.Query, rels []*relation.Relation, assignment []int64, v int) []*relation.Relation {
	var out []*relation.Relation
	for i, a := range q.Atoms {
		if !a.VarSet().Has(v) {
			continue
		}
		r := rels[i]
		for _, u := range a.Vars {
			if u < v {
				r = r.SelectEq(q.VarNames[u], assignment[u])
			}
		}
		out = append(out, r)
	}
	return out
}

// consistent checks the assignment of variables ≤ v against every atom
// whose bound-so-far variables include v.
func consistent(q *query.Query, rels []*relation.Relation, assignment []int64, v int) bool {
	for i, a := range q.Atoms {
		if !a.VarSet().Has(v) {
			continue
		}
		r := rels[i]
		for _, u := range a.Vars {
			if u <= v {
				r = r.SelectEq(q.VarNames[u], assignment[u])
			}
		}
		if r.Len() == 0 {
			return false
		}
	}
	return true
}

// HashJoinPlan evaluates the query by a left-deep hash-join plan in
// ascending-cardinality atom order — the conventional RAM baseline.
func HashJoinPlan(q *query.Query, db query.Database) (*relation.Relation, error) {
	return query.Evaluate(q, db)
}
