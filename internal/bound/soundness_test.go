package bound

import (
	"math"
	"math/rand"
	"testing"

	"circuitql/internal/query"
	"circuitql/internal/relation"
)

// TestBoundSoundOnData: for random instances, the polymatroid bound
// computed from the instance's derived degree constraints must dominate
// the actual output size — |Q(D)| ≤ DAPB(Q) — across the catalog. This
// checks the entire LP formulation against ground truth rather than
// against itself.
func TestBoundSoundOnData(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for _, e := range query.Catalog() {
		q := e.Query
		if q.IsBoolean() {
			continue // output size 0/1, trivially bounded
		}
		full := &query.Query{VarNames: q.VarNames, Free: q.AllVars(), Atoms: q.Atoms}
		for trial := 0; trial < 4; trial++ {
			db := query.Database{}
			for _, a := range q.Atoms {
				if _, ok := db[a.Name]; ok {
					continue
				}
				r := relation.New(schemaFor(len(a.Vars))...)
				for r.Len() < 12 {
					row := make([]int64, len(a.Vars))
					for i := range row {
						row[i] = int64(rng.Intn(5))
					}
					r.Insert(row...)
				}
				db[a.Name] = r
			}
			dcs, err := query.DeriveDC(q, db)
			if err != nil {
				t.Fatal(err)
			}
			res, err := LogDAPB(q, dcs)
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			out, err := query.Evaluate(full, db)
			if err != nil {
				t.Fatal(err)
			}
			if float64(out.Len()) > res.Value()*(1+1e-9) {
				t.Fatalf("%s trial %d: |Q(D)| = %d exceeds DAPB = %g",
					e.Name, trial, out.Len(), res.Value())
			}
		}
	}
}

// TestBoundTightOnWorstCase: on the AGM-tight triangle instance the
// bound is met within the rounding of ⌊√N⌋ — tightness, not just
// soundness.
func TestBoundTightOnWorstCase(t *testing.T) {
	q := query.Triangle()
	for _, n := range []int{16, 64, 144} {
		side := int(math.Sqrt(float64(n)))
		grid := relation.New("x", "y")
		for a := 0; a < side; a++ {
			for b := 0; b < side; b++ {
				grid.Insert(int64(a), int64(b))
			}
		}
		db := query.Database{"R": grid, "S": grid.Clone(), "T": grid.Clone()}
		dcs, err := query.DeriveDC(q, db)
		if err != nil {
			t.Fatal(err)
		}
		res, err := LogDAPB(q, dcs)
		if err != nil {
			t.Fatal(err)
		}
		out, err := query.Evaluate(q, db)
		if err != nil {
			t.Fatal(err)
		}
		want := side * side * side // exactly N^{3/2} triangles
		if out.Len() != want {
			t.Fatalf("n=%d: output %d, want %d", n, out.Len(), want)
		}
		ratio := res.Value() / float64(out.Len())
		if ratio < 1-1e-9 {
			t.Fatalf("n=%d: bound %g below actual %d", n, res.Value(), out.Len())
		}
		// The derived constraints include exact degrees, so the bound
		// should be tight here (no slack beyond rounding).
		if ratio > 1.01 {
			t.Fatalf("n=%d: bound %g not tight against %d (ratio %f)", n, res.Value(), out.Len(), ratio)
		}
	}
}

func schemaFor(k int) []string {
	s := make([]string, k)
	for i := range s {
		s[i] = string(rune('a' + i))
	}
	return s
}
