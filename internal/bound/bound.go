// Package bound computes the degree-aware polymatroid bound of Section
// 3.2: LOGDAPB(Q) = max { h([n]) : h ∈ Γ_n ∩ HDC }, where Γ_n is the
// polymatroid cone and HDC the degree-constraint polytope. The bound is
// computed by an exact LP over the elemental polymatroid inequalities,
// and the LP dual is returned as a Shannon-flow witness (Theorem 1): a
// non-negative vector δ over the degree constraints with
// ⟨δ, h⟩ ≥ h(target) for every polymatroid h and Σ δ·n_{Y|X} = LOGDAPB.
package bound

import (
	"context"
	"fmt"
	"math"
	"math/big"

	"circuitql/internal/lp"
	"circuitql/internal/query"
)

// DeltaTerm is one non-zero coordinate of the Shannon-flow vector δ: the
// degree constraint it multiplies and its weight.
type DeltaTerm struct {
	DC     query.DegreeConstraint
	Weight *big.Rat
}

// SubmodTerm is the multiplier of one elemental submodularity inequality
// h(S∪i) + h(S∪j) ≥ h(S∪i∪j) + h(S) in the dual witness.
type SubmodTerm struct {
	S      query.VarSet // base set, excludes I and J
	I, J   int          // the two distinguished variables, I < J
	Weight *big.Rat     // ≥ 0
}

// MonoTerm is the multiplier of the elemental monotonicity inequality
// h([n]) ≥ h([n] \ {V}).
type MonoTerm struct {
	V      int
	Weight *big.Rat // ≥ 0
}

// SlackTerm is the multiplier of a variable's non-negativity h(S) ≥ 0 in
// the witness (appears when dual feasibility is strict at h(S)).
type SlackTerm struct {
	S      query.VarSet
	Weight *big.Rat // ≥ 0
}

// Witness is the dual certificate of the bound: for every polymatroid h,
//
//	Σ Delta · h(Y|X)  ≥  h(target) + Σ Submod·elem(h) + Σ Mono·mono(h) + Σ Slack·h(S)
//
// with all multipliers non-negative, hence ⟨δ, h⟩ ≥ h(target).
type Witness struct {
	Delta  []DeltaTerm
	Submod []SubmodTerm
	Mono   []MonoTerm
	Slack  []SlackTerm
}

// Result is the outcome of a bound computation.
type Result struct {
	Target   query.VarSet
	LogValue *big.Rat // LOGDAPB in bits (log₂ of the tuple-count bound)
	Witness  Witness
}

// Value returns the bound 2^LogValue as a float64 tuple count.
func (r *Result) Value() float64 {
	f, _ := r.LogValue.Float64()
	return math.Exp2(f)
}

// Log2Rat returns an exact rational equal to the float64 value of log₂ n.
// For n a power of two the result is the exact integer logarithm.
func Log2Rat(n float64) *big.Rat {
	if n <= 0 {
		panic("bound: log of non-positive value")
	}
	if n == 1 {
		return new(big.Rat)
	}
	// Exact for powers of two.
	if l := math.Log2(n); l == math.Trunc(l) && math.Exp2(l) == n {
		return new(big.Rat).SetInt64(int64(l))
	}
	r, ok := new(big.Rat).SetString(fmt.Sprintf("%.12f", math.Log2(n)))
	if !ok {
		panic("bound: cannot represent log2")
	}
	return r
}

// LogDAPB computes the degree-aware polymatroid bound of the full variable
// set: max h([n]) over Γ_n ∩ HDC.
func LogDAPB(q *query.Query, dcs query.DCSet) (*Result, error) {
	return LogBound(q, dcs, q.AllVars())
}

// LogDAPBCtx is LogDAPB under a context: the underlying exact LP polls
// ctx and charges pivots against any attached guard.Budget.
func LogDAPBCtx(ctx context.Context, q *query.Query, dcs query.DCSet) (*Result, error) {
	return LogBoundCtx(ctx, q, dcs, q.AllVars())
}

// LogBound computes max h(target) over Γ_n ∩ HDC for an arbitrary
// non-empty target ⊆ [n] (used per GHD bag by the width computations).
func LogBound(q *query.Query, dcs query.DCSet, target query.VarSet) (*Result, error) {
	return LogBoundCtx(context.Background(), q, dcs, target)
}

// LogBoundCtx is LogBound under a context.
func LogBoundCtx(ctx context.Context, q *query.Query, dcs query.DCSet, target query.VarSet) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := dcs.Validate(q); err != nil {
		return nil, err
	}
	return LogBoundRawCtx(ctx, q, dcs, target)
}

// LogBoundRaw is LogBound without the requirement that every constraint's
// Y set be a hyperedge of the query. PANDA-C's truncation path re-derives
// bounds over the degree constraints of *derived* relations (projections
// and decomposition sub-relations), whose attribute sets are arbitrary
// subsets of [n]; this entry point serves that case. Constraints must
// still satisfy X ⊆ Y and N ≥ 1.
func LogBoundRaw(q *query.Query, dcs query.DCSet, target query.VarSet) (*Result, error) {
	return LogBoundRawCtx(context.Background(), q, dcs, target)
}

// LogBoundRawCtx is LogBoundRaw under a context.
func LogBoundRawCtx(ctx context.Context, q *query.Query, dcs query.DCSet, target query.VarSet) (*Result, error) {
	for _, dc := range dcs {
		if !dc.X.SubsetOf(dc.Y) || dc.N < 1 {
			return nil, fmt.Errorf("bound: malformed constraint %s", dc.Label(q.VarNames))
		}
	}
	if target.Empty() || !target.SubsetOf(q.AllVars()) {
		return nil, fmt.Errorf("bound: invalid target %v", target)
	}
	n := q.NVars()
	nvars := (1 << uint(n)) - 1 // h(S) for non-empty S; h(∅) = 0 implicit
	varOf := func(s query.VarSet) int { return int(s) - 1 }

	p := lp.NewProblem(nvars, lp.Maximize)
	p.SetObjectiveInt(varOf(target), 1)

	// Degree constraints: h(Y) - h(X) ≤ log N.
	type dcRow struct {
		row int
		dc  query.DegreeConstraint
	}
	dcRows := make([]dcRow, 0, len(dcs))
	for _, dc := range dcs {
		coeffs := map[int]*big.Rat{varOf(dc.Y): lp.Rat(1, 1)}
		if !dc.X.Empty() {
			coeffs[varOf(dc.X)] = lp.Rat(-1, 1)
		}
		r := p.AddLE(coeffs, Log2Rat(dc.N))
		dcRows = append(dcRows, dcRow{row: r, dc: dc})
	}

	// Elemental submodularities: h(S∪i) + h(S∪j) - h(S∪ij) - h(S) ≥ 0.
	type smRow struct {
		row  int
		s    query.VarSet
		i, j int
	}
	var smRows []smRow
	full := q.AllVars()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			rest := full.Remove(i).Remove(j)
			rest.Subsets(func(s query.VarSet) {
				coeffs := map[int]*big.Rat{}
				add := func(set query.VarSet, w int64) {
					if set.Empty() {
						return
					}
					k := varOf(set)
					if c, ok := coeffs[k]; ok {
						c.Add(c, lp.Rat(w, 1))
					} else {
						coeffs[k] = lp.Rat(w, 1)
					}
				}
				add(s.Add(i), 1)
				add(s.Add(j), 1)
				add(s.Add(i).Add(j), -1)
				add(s, -1)
				r := p.AddGE(coeffs, lp.Rat(0, 1))
				smRows = append(smRows, smRow{row: r, s: s, i: i, j: j})
			})
		}
	}

	// Elemental monotonicities: h([n]) - h([n]\{i}) ≥ 0.
	type moRow struct {
		row int
		v   int
	}
	moRows := make([]moRow, 0, n)
	for i := 0; i < n; i++ {
		coeffs := map[int]*big.Rat{varOf(full): lp.Rat(1, 1)}
		rest := full.Remove(i)
		if !rest.Empty() {
			coeffs[varOf(rest)] = lp.Rat(-1, 1)
		}
		r := p.AddGE(coeffs, lp.Rat(0, 1))
		moRows = append(moRows, moRow{row: r, v: i})
	}

	sol, err := p.SolveCtx(ctx)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Optimal:
	case lp.Unbounded:
		return nil, fmt.Errorf("bound: LOGDAPB unbounded: degree constraints do not bound h(%s)", target.Label(q.VarNames))
	default:
		return nil, fmt.Errorf("bound: LP %v", sol.Status)
	}

	res := &Result{Target: target, LogValue: sol.Objective}
	for _, dr := range dcRows {
		w := sol.Dual[dr.row]
		if w.Sign() > 0 {
			res.Witness.Delta = append(res.Witness.Delta, DeltaTerm{DC: dr.dc, Weight: new(big.Rat).Set(w)})
		}
	}
	for _, sr := range smRows {
		// GE-row duals are ≤ 0 for Maximize; the witness multiplier is -y.
		w := new(big.Rat).Neg(sol.Dual[sr.row])
		if w.Sign() > 0 {
			res.Witness.Submod = append(res.Witness.Submod, SubmodTerm{S: sr.s, I: sr.i, J: sr.j, Weight: w})
		}
	}
	for _, mr := range moRows {
		w := new(big.Rat).Neg(sol.Dual[mr.row])
		if w.Sign() > 0 {
			res.Witness.Mono = append(res.Witness.Mono, MonoTerm{V: mr.v, Weight: w})
		}
	}
	res.fillSlack(q, nvars)
	return res, nil
}

// fillSlack derives the h(S) ≥ 0 multipliers from the identity
//
//	Σδ·h(Y|X) - h(target) - Σμ_s·elem_s(h) - Σμ_m·mono_m(h) = Σ slack_S·h(S),
//
// which must have non-negative coefficients by LP dual feasibility.
func (r *Result) fillSlack(q *query.Query, nvars int) {
	coef := make([]*big.Rat, nvars+1) // index by int(S)
	for i := range coef {
		coef[i] = new(big.Rat)
	}
	add := func(s query.VarSet, w *big.Rat) {
		if s.Empty() {
			return
		}
		coef[int(s)].Add(coef[int(s)], w)
	}
	sub := func(s query.VarSet, w *big.Rat) {
		if s.Empty() {
			return
		}
		coef[int(s)].Sub(coef[int(s)], w)
	}
	for _, d := range r.Witness.Delta {
		add(d.DC.Y, d.Weight)
		sub(d.DC.X, d.Weight)
	}
	sub(r.Target, big.NewRat(1, 1))
	for _, s := range r.Witness.Submod {
		sub(s.S.Add(s.I), s.Weight)
		sub(s.S.Add(s.J), s.Weight)
		add(s.S.Add(s.I).Add(s.J), s.Weight)
		add(s.S, s.Weight)
	}
	full := q.AllVars()
	for _, m := range r.Witness.Mono {
		sub(full, m.Weight)
		add(full.Remove(m.V), m.Weight)
	}
	for s := 1; s <= nvars; s++ {
		if coef[s].Sign() > 0 {
			r.Witness.Slack = append(r.Witness.Slack, SlackTerm{S: query.VarSet(s), Weight: new(big.Rat).Set(coef[s])})
		}
	}
}

// CheckWitness verifies the witness identity exactly: the functional
// Σδ·h(Y|X) - h(target) must equal the non-negative combination of
// elemental inequalities and variable non-negativities recorded in the
// witness, coefficient by coefficient. It also verifies
// Σ δ·n_{Y|X} = LOGDAPB (Theorem 1's tightness condition).
func (r *Result) CheckWitness(q *query.Query) error {
	n := q.NVars()
	nvars := (1 << uint(n)) - 1
	coef := make([]*big.Rat, nvars+1)
	for i := range coef {
		coef[i] = new(big.Rat)
	}
	add := func(s query.VarSet, w *big.Rat) {
		if !s.Empty() {
			coef[int(s)].Add(coef[int(s)], w)
		}
	}
	neg := func(w *big.Rat) *big.Rat { return new(big.Rat).Neg(w) }

	for _, d := range r.Witness.Delta {
		if d.Weight.Sign() < 0 {
			return fmt.Errorf("bound: negative δ weight")
		}
		add(d.DC.Y, d.Weight)
		add(d.DC.X, neg(d.Weight))
	}
	add(r.Target, big.NewRat(-1, 1))
	for _, s := range r.Witness.Submod {
		if s.Weight.Sign() < 0 {
			return fmt.Errorf("bound: negative submodularity weight")
		}
		add(s.S.Add(s.I), neg(s.Weight))
		add(s.S.Add(s.J), neg(s.Weight))
		add(s.S.Add(s.I).Add(s.J), s.Weight)
		add(s.S, s.Weight)
	}
	full := q.AllVars()
	for _, m := range r.Witness.Mono {
		if m.Weight.Sign() < 0 {
			return fmt.Errorf("bound: negative monotonicity weight")
		}
		add(full, neg(m.Weight))
		add(full.Remove(m.V), m.Weight)
	}
	for _, sl := range r.Witness.Slack {
		if sl.Weight.Sign() < 0 {
			return fmt.Errorf("bound: negative slack weight")
		}
		add(sl.S, neg(sl.Weight))
	}
	for s := 1; s <= nvars; s++ {
		if coef[s].Sign() != 0 {
			return fmt.Errorf("bound: witness identity fails at h(%s): residual %v",
				query.VarSet(s).Label(q.VarNames), coef[s])
		}
	}

	total := new(big.Rat)
	for _, d := range r.Witness.Delta {
		total.Add(total, new(big.Rat).Mul(d.Weight, Log2Rat(d.DC.N)))
	}
	if total.Cmp(r.LogValue) != 0 {
		return fmt.Errorf("bound: Σδ·n = %v ≠ LOGDAPB = %v", total, r.LogValue)
	}
	return nil
}

// FractionalEdgeCoverNumber returns ρ*(Q): the minimum total weight of a
// fractional edge cover of the query hypergraph. Under uniform cardinality
// constraints N, the AGM (and polymatroid) bound is N^ρ*.
func FractionalEdgeCoverNumber(q *query.Query) (*big.Rat, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	edges := q.Edges()
	p := lp.NewProblem(len(edges), lp.Minimize)
	for i := range edges {
		p.SetObjectiveInt(i, 1)
	}
	for v := 0; v < q.NVars(); v++ {
		coeffs := map[int]*big.Rat{}
		for i, e := range edges {
			if e.Has(v) {
				coeffs[i] = lp.Rat(1, 1)
			}
		}
		p.AddGE(coeffs, lp.Rat(1, 1))
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("bound: edge cover LP %v", sol.Status)
	}
	return sol.Objective, nil
}
