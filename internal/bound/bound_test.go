package bound

import (
	"math/big"
	"testing"

	"circuitql/internal/query"
)

func ratEq(t *testing.T, got *big.Rat, num, den int64, what string) {
	t.Helper()
	if got.Cmp(big.NewRat(num, den)) != 0 {
		t.Fatalf("%s = %v, want %d/%d", what, got, num, den)
	}
}

func TestLog2Rat(t *testing.T) {
	ratEq(t, Log2Rat(1), 0, 1, "log2(1)")
	ratEq(t, Log2Rat(8), 3, 1, "log2(8)")
	ratEq(t, Log2Rat(1024), 10, 1, "log2(1024)")
	// Non-power-of-two: approximately log2(3) ≈ 1.585.
	f, _ := Log2Rat(3).Float64()
	if f < 1.58 || f > 1.59 {
		t.Fatalf("log2(3) ≈ %v", f)
	}
}

// TestTriangleAGM: with uniform cardinalities N, LOGDAPB(Q△) = 1.5 log N
// (the AGM bound N^{3/2}) — the paper's Example 1 and inequality (2).
func TestTriangleAGM(t *testing.T) {
	q := query.Triangle()
	res, err := LogDAPB(q, query.Cardinalities(q, 1024)) // log N = 10
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, res.LogValue, 15, 1, "LOGDAPB(triangle, N=2^10)")
	if err := res.CheckWitness(q); err != nil {
		t.Fatal(err)
	}
	if got := res.Value(); got != 32768 {
		t.Fatalf("DAPB = %v, want 2^15", got)
	}
}

func TestEdgeCoverNumbers(t *testing.T) {
	cases := []struct {
		q        *query.Query
		num, den int64
	}{
		{query.Triangle(), 3, 2},
		{query.Path2(), 2, 1},
		{query.Star3(), 3, 1},
		{query.Cycle4(), 2, 1},
		{query.LoomisWhitney4(), 4, 3},
	}
	for _, c := range cases {
		rho, err := FractionalEdgeCoverNumber(c.q)
		if err != nil {
			t.Fatalf("%v: %v", c.q, err)
		}
		ratEq(t, rho, c.num, c.den, "ρ*("+c.q.String()+")")
	}
}

// TestUniformCardinalityMatchesAGM: under uniform cardinality constraints
// the polymatroid bound degenerates to the AGM bound N^ρ* (Section 3.2).
func TestUniformCardinalityMatchesAGM(t *testing.T) {
	for _, e := range query.Catalog() {
		q := e.Query
		res, err := LogDAPB(q, query.Cardinalities(q, 256)) // log N = 8
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		rho, err := FractionalEdgeCoverNumber(q)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Rat).Mul(rho, big.NewRat(8, 1))
		if res.LogValue.Cmp(want) != 0 {
			t.Errorf("%s: LOGDAPB = %v, want ρ*·8 = %v", e.Name, res.LogValue, want)
		}
		if err := res.CheckWitness(q); err != nil {
			t.Errorf("%s: witness: %v", e.Name, err)
		}
	}
}

// TestTriangleWithFD: adding the functional dependency A→B collapses the
// triangle bound from N^1.5 to N.
func TestTriangleWithFD(t *testing.T) {
	q := query.Triangle()
	dcs := query.Cardinalities(q, 1024)
	ab := query.SetOf(q.VarIndex("A"), q.VarIndex("B"))
	dcs = append(dcs, query.DegreeConstraint{X: query.SetOf(q.VarIndex("A")), Y: ab, N: 1})
	res, err := LogDAPB(q, dcs)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, res.LogValue, 10, 1, "LOGDAPB(triangle with FD)")
	if err := res.CheckWitness(q); err != nil {
		t.Fatal(err)
	}
}

// TestTriangleWithDegree: deg(BC|B) ≤ 4 with N = 256 gives the bound
// N·d = 2^10 < N^1.5 = 2^12.
func TestTriangleWithDegree(t *testing.T) {
	q := query.Triangle()
	dcs := query.Cardinalities(q, 256)
	b := query.SetOf(q.VarIndex("B"))
	bc := query.SetOf(q.VarIndex("B"), q.VarIndex("C"))
	dcs = append(dcs, query.DegreeConstraint{X: b, Y: bc, N: 4})
	res, err := LogDAPB(q, dcs)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, res.LogValue, 10, 1, "LOGDAPB(triangle with degree)")
	if err := res.CheckWitness(q); err != nil {
		t.Fatal(err)
	}
}

// TestHeterogeneousCardinalities: triangle with |R|=2^4, |S|=2^6, |T|=2^8
// has AGM bound 2^((4+6+8)/2) = 2^9.
func TestHeterogeneousCardinalities(t *testing.T) {
	q := query.Triangle()
	idx := func(n string) int { return q.VarIndex(n) }
	dcs := query.DCSet{
		{X: 0, Y: query.SetOf(idx("A"), idx("B")), N: 16},
		{X: 0, Y: query.SetOf(idx("B"), idx("C")), N: 64},
		{X: 0, Y: query.SetOf(idx("A"), idx("C")), N: 256},
	}
	res, err := LogDAPB(q, dcs)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, res.LogValue, 9, 1, "LOGDAPB(heterogeneous triangle)")
	if err := res.CheckWitness(q); err != nil {
		t.Fatal(err)
	}
}

// TestLogBoundSubTarget: the bound of a sub-target is governed by its
// covering constraints: max h(AB) = log|R_AB|.
func TestLogBoundSubTarget(t *testing.T) {
	q := query.Triangle()
	dcs := query.Cardinalities(q, 1024)
	ab := query.SetOf(q.VarIndex("A"), q.VarIndex("B"))
	res, err := LogBound(q, dcs, ab)
	if err != nil {
		t.Fatal(err)
	}
	ratEq(t, res.LogValue, 10, 1, "max h(AB)")
	if err := res.CheckWitness(q); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundedWithoutConstraints(t *testing.T) {
	q := query.Triangle()
	// Only one cardinality constraint: C is unconstrained from above.
	dcs := query.DCSet{{X: 0, Y: query.SetOf(0, 1), N: 4}}
	if _, err := LogDAPB(q, dcs); err == nil {
		t.Fatal("expected unbounded error")
	}
}

func TestInvalidInputs(t *testing.T) {
	q := query.Triangle()
	dcs := query.Cardinalities(q, 4)
	if _, err := LogBound(q, dcs, 0); err == nil {
		t.Fatal("expected error for empty target")
	}
	bad := query.DCSet{{X: query.SetOf(2), Y: query.SetOf(0, 1), N: 4}}
	if _, err := LogDAPB(q, bad); err == nil {
		t.Fatal("expected error for invalid DC")
	}
}

// TestWitnessDeltaSupportsDC: every δ term multiplies an actual degree
// constraint and the total Σδ·n equals the bound (Theorem 1).
func TestWitnessDeltaSupportsDC(t *testing.T) {
	q := query.Cycle4()
	dcs := query.Cardinalities(q, 64)
	res, err := LogDAPB(q, dcs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Witness.Delta {
		found := false
		for _, dc := range dcs {
			if dc.X == d.DC.X && dc.Y == d.DC.Y && dc.N == d.DC.N {
				found = true
			}
		}
		if !found {
			t.Fatalf("δ term %+v not among input constraints", d.DC)
		}
	}
	if err := res.CheckWitness(q); err != nil {
		t.Fatal(err)
	}
}

// TestBoundMonotoneInConstraints: loosening a cardinality constraint can
// only increase the bound.
func TestBoundMonotoneInConstraints(t *testing.T) {
	q := query.Triangle()
	small, err := LogDAPB(q, query.Cardinalities(q, 16))
	if err != nil {
		t.Fatal(err)
	}
	large, err := LogDAPB(q, query.Cardinalities(q, 256))
	if err != nil {
		t.Fatal(err)
	}
	if small.LogValue.Cmp(large.LogValue) >= 0 {
		t.Fatalf("bound not monotone: %v vs %v", small.LogValue, large.LogValue)
	}
}
