package circuitql

import (
	"context"
	"testing"
	"time"

	"circuitql/internal/obs"
	"circuitql/internal/workload"
)

// TestCompileSpanChildrenCoverWallTime pins the span taxonomy's
// accounting guarantee: the compile span's direct children (lp-solve,
// proofseq, relcircuit, boolcircuit) must explain at least 90% of the
// compile's wall time, so a trace answers "where did the compile go"
// without a large unattributed residue.
func TestCompileSpanChildrenCoverWallTime(t *testing.T) {
	q, err := ParseQuery("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
	if err != nil {
		t.Fatal(err)
	}
	db := workload.TriangleDB(workload.TriangleUniform, 42, 12)
	dcs, err := DeriveConstraints(q, db)
	if err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer(4)
	ctx := obs.WithTracer(context.Background(), tracer)
	cq, err := CompileCtx(ctx, q, dcs)
	if err != nil {
		t.Fatal(err)
	}

	roots := tracer.Last(0)
	if len(roots) != 1 || roots[0].Name != obs.StageCompile {
		t.Fatalf("roots = %v, want one %q span", roots, obs.StageCompile)
	}
	root := roots[0]
	total := root.Duration()
	if total <= 0 {
		t.Fatal("compile span has no duration")
	}

	var covered time.Duration
	stages := map[string]bool{}
	for _, c := range root.Children() {
		covered += c.Duration()
		stages[c.Name] = true
	}
	for _, want := range []string{obs.StageLPSolve, obs.StageProofSeq, obs.StageRelCirc, obs.StageBoolCirc, obs.StageOptimize} {
		if !stages[want] {
			t.Errorf("compile span missing %q child (got %v)", want, stages)
		}
	}
	if ratio := float64(covered) / float64(total); ratio < 0.9 {
		t.Errorf("children cover %.1f%% of compile wall time (%v of %v), want >= 90%%\n%s",
			ratio*100, covered, total, obs.Format(root))
	}

	// The counters must be in the paper's currency: the boolcircuit child
	// reports what the lowering produced, and the optimize child accounts
	// for the shrink down to the final circuit of Stats().
	st := cq.Stats()
	var boolGates, optBefore, optAfter int64
	for _, c := range root.Children() {
		for _, a := range c.Attrs() {
			switch {
			case c.Name == obs.StageBoolCirc && a.Key == obs.CounterGates:
				boolGates = a.Int
			case c.Name == obs.StageOptimize && a.Key == obs.CounterOptGatesBefore:
				optBefore = a.Int
			case c.Name == obs.StageOptimize && a.Key == obs.CounterOptGatesAfter:
				optAfter = a.Int
			}
		}
	}
	if boolGates != optBefore {
		t.Errorf("boolcircuit span gates = %d, optimize span gates_before = %d", boolGates, optBefore)
	}
	if optAfter != int64(st.Gates) {
		t.Errorf("optimize span gates_after = %d, Stats().Gates = %d", optAfter, st.Gates)
	}
	if boolGates < optAfter {
		t.Errorf("lowering reported %d gates, fewer than the optimized circuit's %d", boolGates, optAfter)
	}

	// Evaluation spans attach as fresh roots under the same tracer.
	if _, err := cq.EvaluateCtx(ctx, db); err != nil {
		t.Fatal(err)
	}
	roots = tracer.Last(0)
	if roots[0].Name != obs.StageBoolEval {
		t.Fatalf("latest root = %q, want %q", roots[0].Name, obs.StageBoolEval)
	}
}
