package circuitql_test

import (
	"fmt"

	"circuitql"
)

// Compile the paper's running example — the triangle query — and
// evaluate the resulting oblivious circuit.
func ExampleCompile() {
	q, _ := circuitql.ParseQuery("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")

	r := circuitql.NewRelation("u", "v")
	r.Insert(1, 2)
	s := circuitql.NewRelation("u", "v")
	s.Insert(2, 3)
	t := circuitql.NewRelation("u", "v")
	t.Insert(1, 3)
	db := circuitql.Database{"R": r, "S": s, "T": t}

	dcs := circuitql.UniformCardinalities(q, 4)
	cq, _ := circuitql.Compile(q, dcs)
	out, _ := cq.Evaluate(db)
	fmt.Println(out)
	// Output: [A B C]{[1 2 3]}
}

// The polymatroid bound of the triangle under uniform cardinalities is
// the AGM bound N^{3/2}.
func ExamplePolymatroidBound() {
	q, _ := circuitql.ParseQuery("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
	b, _ := circuitql.PolymatroidBound(q, circuitql.UniformCardinalities(q, 1024))
	fmt.Println(b.RatString(), "bits") // 1.5 · log2(1024)
	// Output: 15 bits
}

// Output-sensitive evaluation runs as two circuits: one computes
// OUT = |Q(D)| from the constraints alone, the second is sized by OUT.
func ExampleOutputSensitive() {
	q, _ := circuitql.ParseQuery("Q(A,C) :- R(A,B), S(B,C)")
	r := circuitql.NewRelation("u", "v")
	r.Insert(1, 10)
	r.Insert(2, 10)
	s := circuitql.NewRelation("u", "v")
	s.Insert(10, 7)
	db := circuitql.Database{"R": r, "S": s}

	dcs, _ := circuitql.DeriveConstraints(q, db)
	os, _ := circuitql.OutputSensitive(q, dcs)
	n, _ := os.Count(db)
	out, _ := os.Evaluate(db)
	fmt.Println(n, out)
	// Output: 2 [A C]{[1 7], [2 7]}
}

// Boolean queries compile to decision circuits.
func ExampleCompileBoolean() {
	q, _ := circuitql.ParseQuery("Q() :- R(A,B), S(B,A)")
	r := circuitql.NewRelation("u", "v")
	r.Insert(1, 2)
	s := circuitql.NewRelation("u", "v")
	s.Insert(2, 1)
	db := circuitql.Database{"R": r, "S": s}

	bq, _ := circuitql.CompileBoolean(q, circuitql.UniformCardinalities(q, 4))
	ok, _ := bq.Decide(db)
	fmt.Println(ok)
	// Output: true
}

// Degree constraints sharpen the bound: a functional dependency turns
// the triangle's N^{3/2} into N.
func ExampleParseConstraints() {
	q, _ := circuitql.ParseQuery("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
	dcs := circuitql.UniformCardinalities(q, 1024)
	extra, _ := circuitql.ParseConstraints(q, "R|A <= 1") // A → B in R
	b, _ := circuitql.PolymatroidBound(q, append(dcs, extra...))
	fmt.Println(b.RatString(), "bits")
	// Output: 10 bits
}
