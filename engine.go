// Serving facade: a long-lived Engine that amortizes compilation across
// requests via a canonical plan cache and evaluates concurrently.
//
// The paper's circuits are data independent — compiled once per
// (query, DC set) and valid for every conforming database — which makes
// them cacheable plans. Engine keys the cache by the canonical
// fingerprint of the pair (variables alpha-renamed into canonical order,
// atoms and constraints sorted, then hashed), so structurally identical
// requests share one plan regardless of variable names or atom order;
// concurrent cold requests for the same fingerprint compile once
// (singleflight); eviction is cost-aware LRU charged by gate count; and
// each evaluation runs the tiered ladder of EvaluateResilient under the
// caller's context and Budget.
package circuitql

import (
	"context"

	"circuitql/internal/engine"
	"circuitql/internal/qos"
	"circuitql/internal/query"
	"circuitql/internal/store"
)

// EngineConfig sizes an Engine; see the field docs in internal/engine.
// The zero value selects sensible defaults (GOMAXPROCS workers, 4M-gate
// cache, wide-level parallel routing at 4096 gates per level).
type EngineConfig = engine.Config

// EngineMetrics is a point-in-time snapshot of an Engine's counters:
// cache hits/misses/evictions, compile dedup, per-tier serve counts,
// in-flight requests, and compile/eval latency histograms.
type EngineMetrics = engine.Metrics

// ServeResult is the outcome of one Engine request: the output relation
// (columns named and ordered by the request's free variables), the plan
// fingerprint, cache-hit flag, the tier that served, per-tier attempts,
// and compile/eval timings.
type ServeResult = engine.Result

// ShedPolicy selects how an Engine behaves when its admission queues
// fill: block the caller (the default), shed immediately with a typed
// ErrOverloaded, or shed adaptively by load and priority.
type ShedPolicy = engine.ShedPolicy

// Shed policies for EngineConfig.ShedPolicy.
const (
	// ShedBlock: Submit blocks until the lane accepts the request or
	// the caller's context dies. Predictable, but a saturated engine
	// backs pressure up into every caller.
	ShedBlock = engine.ShedBlock
	// ShedOnFull: a full lane rejects immediately with ErrOverloaded
	// carrying a retry-after hint, keeping latency bounded.
	ShedOnFull = engine.ShedOnFull
	// ShedAdaptive: ShedOnFull plus the degradation ladder — under
	// sustained pressure new compiles skip the optimizer, wide plans
	// route to cheaper tiers, and low-priority work is shed first.
	ShedAdaptive = engine.ShedAdaptive
)

// Priority orders requests for load shedding: under ShedAdaptive and
// critical load, below-normal-priority requests are shed first. Attach
// with WithPriority.
type Priority = qos.Priority

// Priorities for WithPriority.
const (
	PriorityLow    = qos.PriorityLow
	PriorityNormal = qos.PriorityNormal
	PriorityHigh   = qos.PriorityHigh
)

// WithPriority tags ctx with a shedding priority for requests submitted
// under it.
func WithPriority(ctx context.Context, p Priority) context.Context {
	return qos.WithPriority(ctx, p)
}

// QoSSnapshot is a point-in-time view of an Engine's overload-protection
// state: per-lane admissions and sheds, reroutes, deadline failures by
// stage, degradation actions, live queue gauges, and the current
// degradation level.
type QoSSnapshot = qos.Snapshot

// Fingerprint identifies a (query, DC set) pair up to variable renaming
// and atom/constraint reordering.
type Fingerprint = query.Fingerprint

// QueryFingerprint is the canonical fingerprint of a (query, DC set)
// pair: invariant under variable renaming and atom/constraint
// reordering, distinct for structurally different pairs. It is the plan
// cache's key, exported for observability and external caching layers.
func QueryFingerprint(q *Query, dcs DCSet) (Fingerprint, error) {
	return query.QueryFingerprint(q, dcs)
}

// PlanStore is a persistent plan-artifact store: compiled plans survive
// process restarts as versioned, checksummed files keyed by canonical
// fingerprint, written atomically so a crash can never corrupt a
// visible artifact. Set EngineConfig.Store to one (with WarmStart) and
// a restarted engine serves every previously-compiled shape without
// recompiling.
type PlanStore = store.Store

// PlanStoreStats is a snapshot of a PlanStore's counters: resident
// plans, disk hits/misses, writes, quarantined corruption, and bytes
// moved.
type PlanStoreStats = store.Stats

// OpenPlanStore opens (creating if needed) a plan store rooted at dir,
// sweeping any torn writes a previous crash left behind and reconciling
// the index against the artifacts actually present.
func OpenPlanStore(dir string) (*PlanStore, error) { return store.Open(dir) }

// ColumnarDB is an on-disk columnar database directory: one
// dictionary-compressed, checksummed file per relation, scannable block
// by block without materializing in-memory relations.
type ColumnarDB = store.DB

// ExportColumnarDB writes every relation of db as a columnar file under
// dir (atomically, one file per relation); see OpenColumnarDB to read
// it back.
func ExportColumnarDB(dir string, db Database) error { return store.ExportDB(dir, db) }

// OpenColumnarDB opens a columnar database directory written by
// ExportColumnarDB (or circuitc -export).
func OpenColumnarDB(dir string) (*ColumnarDB, error) { return store.OpenDB(dir) }

// Engine is a long-lived serving engine over the compile/evaluate
// pipeline. Create with NewEngine, stop with Close. Safe for concurrent
// use.
type Engine struct {
	inner *engine.Engine
}

// NewEngine starts a serving engine.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{inner: engine.New(cfg)}
}

// Serve evaluates one request to completion on the engine's worker
// pool: fetch or compile the plan for (q, dcs), validate db against it,
// evaluate through the tiers, and return the output named by q's free
// variables. The context's deadline, cancellation, and any Budget
// attached with WithBudget apply to both compilation and evaluation.
func (e *Engine) Serve(ctx context.Context, q *Query, dcs DCSet, db Database) ServeResult {
	return e.inner.Serve(ctx, engine.Request{Query: q, DCs: dcs, DB: db})
}

// Submit enqueues a request and returns a channel that will receive
// exactly one ServeResult, so independent requests fan out across the
// bounded worker pool.
func (e *Engine) Submit(ctx context.Context, q *Query, dcs DCSet, db Database) <-chan ServeResult {
	return e.inner.Submit(ctx, engine.Request{Query: q, DCs: dcs, DB: db})
}

// EngineRequest is one evaluation for ServeBatch: a query, the degree
// constraints the plan is compiled against, and the database.
type EngineRequest = engine.Request

// SubmitRequest is Submit with the request already assembled as an
// EngineRequest — the form network front ends (internal/wire) and load
// harnesses submit, so they can drive the engine through one interface.
func (e *Engine) SubmitRequest(ctx context.Context, req EngineRequest) <-chan ServeResult {
	return e.inner.Submit(ctx, req)
}

// ShardCount reports how many shards the engine runs (EngineConfig.Shards).
func (e *Engine) ShardCount() int { return e.inner.ShardCount() }

// ServeBatch fans a slice of independent requests across the worker
// pool and waits for all of them; results are positional. With
// EngineConfig.BatchMaxSize > 1, concurrent requests sharing a plan
// fingerprint are additionally coalesced into lock-step vm batches, so
// same-shape requests amortize gate decode across the whole batch.
func (e *Engine) ServeBatch(ctx context.Context, reqs []EngineRequest) []ServeResult {
	return e.inner.ServeBatch(ctx, reqs)
}

// Close stops accepting requests, drains queued ones, and waits for the
// workers to finish. Safe to call more than once, including
// concurrently with itself and with Serve/Submit.
func (e *Engine) Close() error { return e.inner.Close() }

// Shutdown is Close bounded by ctx: when ctx expires, engine-owned work
// (detached compiles) is canceled so queued requests drain promptly
// with typed errors instead of waiting out arbitrarily long compiles.
func (e *Engine) Shutdown(ctx context.Context) error { return e.inner.Shutdown(ctx) }

// Metrics returns a snapshot of the engine's counters.
func (e *Engine) Metrics() EngineMetrics { return e.inner.Metrics() }

// QoS returns a snapshot of the engine's overload-protection state.
func (e *Engine) QoS() QoSSnapshot { return e.inner.QoS() }
