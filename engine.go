// Serving facade: a long-lived Engine that amortizes compilation across
// requests via a canonical plan cache and evaluates concurrently.
//
// The paper's circuits are data independent — compiled once per
// (query, DC set) and valid for every conforming database — which makes
// them cacheable plans. Engine keys the cache by the canonical
// fingerprint of the pair (variables alpha-renamed into canonical order,
// atoms and constraints sorted, then hashed), so structurally identical
// requests share one plan regardless of variable names or atom order;
// concurrent cold requests for the same fingerprint compile once
// (singleflight); eviction is cost-aware LRU charged by gate count; and
// each evaluation runs the tiered ladder of EvaluateResilient under the
// caller's context and Budget.
package circuitql

import (
	"context"

	"circuitql/internal/engine"
	"circuitql/internal/query"
)

// EngineConfig sizes an Engine; see the field docs in internal/engine.
// The zero value selects sensible defaults (GOMAXPROCS workers, 4M-gate
// cache, wide-level parallel routing at 4096 gates per level).
type EngineConfig = engine.Config

// EngineMetrics is a point-in-time snapshot of an Engine's counters:
// cache hits/misses/evictions, compile dedup, per-tier serve counts,
// in-flight requests, and compile/eval latency histograms.
type EngineMetrics = engine.Metrics

// ServeResult is the outcome of one Engine request: the output relation
// (columns named and ordered by the request's free variables), the plan
// fingerprint, cache-hit flag, the tier that served, per-tier attempts,
// and compile/eval timings.
type ServeResult = engine.Result

// Fingerprint identifies a (query, DC set) pair up to variable renaming
// and atom/constraint reordering.
type Fingerprint = query.Fingerprint

// QueryFingerprint is the canonical fingerprint of a (query, DC set)
// pair: invariant under variable renaming and atom/constraint
// reordering, distinct for structurally different pairs. It is the plan
// cache's key, exported for observability and external caching layers.
func QueryFingerprint(q *Query, dcs DCSet) (Fingerprint, error) {
	return query.QueryFingerprint(q, dcs)
}

// Engine is a long-lived serving engine over the compile/evaluate
// pipeline. Create with NewEngine, stop with Close. Safe for concurrent
// use.
type Engine struct {
	inner *engine.Engine
}

// NewEngine starts a serving engine.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{inner: engine.New(cfg)}
}

// Serve evaluates one request to completion on the engine's worker
// pool: fetch or compile the plan for (q, dcs), validate db against it,
// evaluate through the tiers, and return the output named by q's free
// variables. The context's deadline, cancellation, and any Budget
// attached with WithBudget apply to both compilation and evaluation.
func (e *Engine) Serve(ctx context.Context, q *Query, dcs DCSet, db Database) ServeResult {
	return e.inner.Serve(ctx, engine.Request{Query: q, DCs: dcs, DB: db})
}

// Submit enqueues a request and returns a channel that will receive
// exactly one ServeResult, so independent requests fan out across the
// bounded worker pool.
func (e *Engine) Submit(ctx context.Context, q *Query, dcs DCSet, db Database) <-chan ServeResult {
	return e.inner.Submit(ctx, engine.Request{Query: q, DCs: dcs, DB: db})
}

// Close stops accepting requests, drains queued ones, and waits for the
// workers to finish. Safe to call more than once.
func (e *Engine) Close() error { return e.inner.Close() }

// Metrics returns a snapshot of the engine's counters.
func (e *Engine) Metrics() EngineMetrics { return e.inner.Metrics() }
