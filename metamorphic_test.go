// Metamorphic differential tier: equivalence-preserving rewrites of a
// query — atom reordering, variable renaming, atom duplication — must
// change neither its answers on any database nor its semantic plan
// digest (core.SemanticDigest). The first two rewrites also preserve
// the canonical fingerprint (canonicalization merges α-variants);
// duplication does not, which is exactly the gap the semantic digest
// closes, so the harness asserts the fingerprints diverge there — a
// canonicalizer that started deduplicating atoms would make the
// digest's aliasing test vacuous, and this tier would say so.
package circuitql

import (
	"context"
	"testing"

	"circuitql/internal/core"
	"circuitql/internal/query"
	"circuitql/internal/testutil"
)

// metaN is the per-relation cardinality bound for metamorphic compiles.
// Small on purpose: every variant is its own semantic-CSE compile.
const metaN = 3

// metamorphicCases: per query family, the base shape plus hardcoded
// equivalence-preserving rewrites. kind "alpha" variants must share the
// base's canonical fingerprint; "dup" variants must not.
var metamorphicCases = []struct {
	name     string
	base     string
	variants []struct{ kind, src string }
}{
	{
		name: "path2",
		base: "Q(A,B,C) :- R(A,B), S(B,C)",
		variants: []struct{ kind, src string }{
			{"alpha", "Q(A,B,C) :- S(B,C), R(A,B)"},
			{"alpha", "Q(X,Y,Z) :- R(X,Y), S(Y,Z)"},
			{"dup", "Q(A,B,C) :- R(A,B), R(A,B), S(B,C)"},
		},
	},
	{
		name: "path3",
		base: "Q(A,B,C,D) :- R(A,B), S(B,C), T(C,D)",
		variants: []struct{ kind, src string }{
			{"alpha", "Q(A,B,C,D) :- T(C,D), R(A,B), S(B,C)"},
			{"alpha", "Q(W,X,Y,Z) :- R(W,X), S(X,Y), T(Y,Z)"},
			{"dup", "Q(A,B,C,D) :- R(A,B), S(B,C), S(B,C), T(C,D)"},
		},
	},
	{
		name: "triangle",
		base: "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)",
		variants: []struct{ kind, src string }{
			{"alpha", "Q(A,B,C) :- T(A,C), S(B,C), R(A,B)"},
			{"alpha", "Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z)"},
			{"dup", "Q(A,B,C) :- R(A,B), S(B,C), T(A,C), R(A,B)"},
		},
	},
	{
		name: "cycle4",
		base: "Q(A,B,C,D) :- R(A,B), S(B,C), T(C,D), U(D,A)",
		variants: []struct{ kind, src string }{
			{"alpha", "Q(A,B,C,D) :- U(D,A), T(C,D), S(B,C), R(A,B)"},
			{"alpha", "Q(W,X,Y,Z) :- R(W,X), S(X,Y), T(Y,Z), U(Z,W)"},
			{"dup", "Q(A,B,C,D) :- R(A,B), S(B,C), T(C,D), U(D,A), T(C,D)"},
		},
	},
}

// metaCompile canonicalizes and compiles one shape through the
// semantic-CSE pipeline, returning the compile, its canonical pair, and
// its semantic digest.
func metaCompile(t *testing.T, src string) (*core.Compiled, *query.Canonical, core.SemDigest) {
	t.Helper()
	q := query.MustParse(src)
	canon, err := query.Canonicalize(q, UniformCardinalities(q, metaN))
	if err != nil {
		t.Fatalf("canonicalize %q: %v", src, err)
	}
	cq, err := core.CompileQueryOptsCtx(context.Background(), canon.Query, canon.DCs,
		core.CompileOptions{SemanticCSE: true})
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	dig, err := core.SemanticDigest(cq)
	if err != nil {
		t.Fatalf("digest %q: %v", src, err)
	}
	return cq, canon, dig
}

// metaRows evaluates a compiled canonical plan on db and renames its
// output columns to the base query's variable names — variable ids
// correspond positionally across every variant of one family (the
// parser numbers by first appearance), so the row sets compare
// directly against the base reference even for renamed variants.
func metaRows(t *testing.T, cq *core.Compiled, canon *query.Canonical, src string, baseQ *query.Query, db Database) []string {
	t.Helper()
	out, err := cq.EvaluateOblivious(db)
	if err != nil {
		t.Fatalf("evaluate %q: %v", src, err)
	}
	m := make(map[string]string, baseQ.Free.Len())
	proj := make([]string, 0, baseQ.Free.Len())
	for _, v := range baseQ.Free.Vars() {
		m[canon.Query.VarNames[canon.VarMap[v]]] = baseQ.VarNames[v]
		proj = append(proj, baseQ.VarNames[v])
	}
	return testutil.Rows(out.Rename(m).Project(proj...))
}

func TestMetamorphicEquivalence(t *testing.T) {
	for _, tc := range metamorphicCases {
		t.Run(tc.name, func(t *testing.T) {
			baseCQ, baseCanon, baseDig := metaCompile(t, tc.base)
			if !baseDig.Valid() {
				t.Fatalf("base %q has no semantic digest", tc.base)
			}
			if rep := baseCQ.Opt; rep == nil || rep.SemSignatureK == 0 {
				t.Fatalf("base %q did not run the semantic pipeline: %+v", tc.base, baseCQ.Opt)
			}

			baseQ := query.MustParse(tc.base)
			type variant struct {
				kind, src string
				cq        *core.Compiled
				canon     *query.Canonical
			}
			variants := make([]variant, 0, len(tc.variants))
			for _, v := range tc.variants {
				cq, canon, dig := metaCompile(t, v.src)
				if dig.Hex != baseDig.Hex {
					t.Errorf("%s variant %q: digest diverges from base", v.kind, v.src)
				}
				switch v.kind {
				case "alpha":
					if canon.FP != baseCanon.FP {
						t.Errorf("alpha variant %q does not share the canonical fingerprint", v.src)
					}
				case "dup":
					if canon.FP == baseCanon.FP {
						t.Errorf("dup variant %q shares the canonical fingerprint; the digest test is vacuous", v.src)
					}
				}
				variants = append(variants, variant{v.kind, v.src, cq, canon})
			}

			for seed := int64(1); seed <= diffSeeds; seed++ {
				db := testutil.RandomDB(baseQ, seed, metaN)
				want, err := EvaluateRAM(baseQ, db)
				if err != nil {
					t.Fatalf("seed %d: RAM: %v", seed, err)
				}
				wantRows := testutil.Rows(want)
				if d := testutil.DiffRows(wantRows, metaRows(t, baseCQ, baseCanon, tc.base, baseQ, db), "RAM", "base"); d != "" {
					t.Errorf("seed %d: base circuit diverges from RAM: %s", seed, d)
				}
				for _, v := range variants {
					got := metaRows(t, v.cq, v.canon, v.src, baseQ, db)
					if d := testutil.DiffRows(wantRows, got, "RAM(base)", v.kind+" variant"); d != "" {
						t.Errorf("seed %d: %s variant %q diverges: %s", seed, v.kind, v.src, d)
					}
				}
			}
		})
	}
}
