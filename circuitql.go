// Package circuitql evaluates conjunctive queries by circuits,
// implementing "Query Evaluation by Circuits" (Wang & Yi, PODS 2022).
//
// Given a conjunctive query Q and degree constraints DC (cardinality
// bounds, degree bounds, functional dependencies), the library compiles a
// data-independent circuit that computes Q(D) for every database D
// conforming to DC:
//
//   - Compile produces the worst-case-optimal circuit of Theorems 3-4:
//     a PANDA-C relational circuit of polylogarithmic gate count lowered
//     to an oblivious word-level circuit of Õ(1) depth and size matching
//     the polymatroid bound Õ(N + DAPB(Q));
//   - OutputSensitive produces the two circuit families of Theorem 5:
//     one that computes OUT = |Q(D)| from DC alone, and one,
//     parameterized by OUT, that computes Q(D) with size
//     Õ(N + 2^da-fhtw + OUT).
//
// Because the circuits are data independent they are oblivious by
// construction: the sequence of operations never depends on tuple
// values, which is what secure multi-party computation, outsourced query
// processing, and hardware query evaluation need (Section 1 of the
// paper). Bound, width, and proof-sequence machinery (polymatroid bound
// with exact rational LPs, Shannon-flow proof sequences, GHDs and
// degree-aware widths) is exposed for inspection.
//
// A minimal session:
//
//	q, _ := circuitql.ParseQuery("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
//	dcs := circuitql.UniformCardinalities(q, 1024)
//	cq, _ := circuitql.Compile(q, dcs)
//	out, _ := cq.Evaluate(db) // any db with |R|,|S|,|T| ≤ 1024
package circuitql

import (
	"context"
	"fmt"
	"io"
	"math/big"

	"circuitql/internal/bitblast"
	"circuitql/internal/core"
	"circuitql/internal/guard"
	"circuitql/internal/opt"
	"circuitql/internal/panda"
	"circuitql/internal/query"
	"circuitql/internal/relation"
	"circuitql/internal/relcircuit"
	"circuitql/internal/yannakakis"
)

// Re-exported core types: queries, constraints, and relations.
type (
	// Query is a conjunctive query over a hypergraph with free variables.
	Query = query.Query
	// DegreeConstraint is the triple (X, Y, N) asserting deg(Y|X) ≤ N.
	DegreeConstraint = query.DegreeConstraint
	// DCSet is a set of degree constraints.
	DCSet = query.DCSet
	// Database maps relation names to relations.
	Database = query.Database
	// Relation is a set of tuples over named attributes.
	Relation = relation.Relation
	// Tuple is one row.
	Tuple = relation.Tuple
	// VarSet is a set of query variables.
	VarSet = query.VarSet
)

// NewRelation creates an empty relation with the given attribute names.
func NewRelation(attrs ...string) *Relation { return relation.New(attrs...) }

// ParseQuery parses a datalog-style conjunctive query, e.g.
// "Q(A,C) :- R(A,B), S(B,C)".
func ParseQuery(src string) (*Query, error) { return query.Parse(src) }

// UniformCardinalities returns the constraint set |R_F| ≤ n for every
// atom of q.
func UniformCardinalities(q *Query, n float64) DCSet { return query.Cardinalities(q, n) }

// DeriveConstraints measures db and returns the tightest degree
// constraints it satisfies (cardinalities plus every degree bound on
// each atom's attribute subsets). Compiling against these yields the
// smallest circuit that still evaluates db and everything dominated by
// it.
func DeriveConstraints(q *Query, db Database) (DCSet, error) { return query.DeriveDC(q, db) }

// EvaluateRAM is the reference (non-circuit) evaluator, used for
// cross-checking.
func EvaluateRAM(q *Query, db Database) (*Relation, error) {
	return EvaluateRAMCtx(context.Background(), q, db)
}

// CompiledQuery is a fully compiled worst-case-optimal circuit for a
// full conjunctive query (Theorems 3-4).
type CompiledQuery struct {
	inner *core.Compiled
}

// Compile builds the PANDA-C relational circuit and its oblivious
// lowering for a full CQ under the given constraints, then runs the
// internal/opt optimizer passes (CSE, constant/empty propagation,
// dead-gate elimination, level recompaction) over both layers.
func Compile(q *Query, dcs DCSet) (*CompiledQuery, error) {
	return CompileCtx(context.Background(), q, dcs)
}

// CompileOptions tunes the compile pipeline; the zero value enables the
// optimizer. NoOpt emits the paper's constructions verbatim.
type CompileOptions = core.CompileOptions

// OptReport is the optimizer's before/after size accounting for one
// compile.
type OptReport = opt.Report

// CompileOpts is Compile with explicit pipeline options under a context.
func CompileOpts(ctx context.Context, q *Query, dcs DCSet, opts CompileOptions) (cq *CompiledQuery, err error) {
	defer guard.Recover(&err)
	inner, err := core.CompileQueryOptsCtx(ctx, q, dcs, opts)
	if err != nil {
		return nil, err
	}
	return &CompiledQuery{inner: inner}, nil
}

// OptimizerReport returns the optimizer's before/after sizes, or nil
// when compilation ran with NoOpt.
func (c *CompiledQuery) OptimizerReport() *OptReport { return c.inner.Opt }

// Evaluate runs the oblivious circuit on db and returns Q(D). The same
// CompiledQuery evaluates any database conforming to the constraints it
// was compiled for.
func (c *CompiledQuery) Evaluate(db Database) (*Relation, error) {
	return c.EvaluateCtx(context.Background(), db)
}

// EvaluateRelational runs the relational-circuit layer (faster; same
// result), optionally verifying that every wire conforms to its declared
// bound.
func (c *CompiledQuery) EvaluateRelational(db Database, check bool) (*Relation, error) {
	return c.EvaluateRelationalCtx(context.Background(), db, check)
}

// Stats summarizes the compiled circuits.
type Stats struct {
	RelationalGates int     // relational circuit size (Theorem 3: Õ(1))
	RelationalDepth int     // relational circuit depth
	Cost            float64 // relational cost model = oblivious size target
	Gates           int     // oblivious word-level gate count (Theorem 4 size)
	Depth           int     // oblivious depth (Theorem 4: Õ(1))
	DAPB            float64 // polymatroid bound 2^LOGDAPB
}

// Stats reports the circuit sizes and the bound they match.
func (c *CompiledQuery) Stats() Stats {
	return Stats{
		RelationalGates: c.inner.Rel.Size(),
		RelationalDepth: c.inner.Rel.Depth(),
		Cost:            c.inner.Rel.Cost(),
		Gates:           c.inner.Obliv.C.Size(),
		Depth:           c.inner.Obliv.C.Depth(),
		DAPB:            c.inner.Bound.Value(),
	}
}

// BrentSteps returns the number of PRAM steps to evaluate the oblivious
// circuit on p processors (Brent's theorem: ≤ W/p + D).
func (c *CompiledQuery) BrentSteps(p int) int {
	return core.BrentSchedule(c.inner.Obliv.C, p)
}

// GateList renders the relational circuit's gates one per line, for
// inspection (the data-independent "protocol transcript" skeleton).
func (c *CompiledQuery) GateList() []string {
	var out []string
	for _, g := range c.inner.Rel.Gates {
		out = append(out, fmtGate(c.inner.Rel, g.ID))
	}
	return out
}

// SecureCost prices the oblivious circuit for secure computation at the
// given word width (bits per value) and security parameter: total
// bit-level gates, non-linear (AND-equivalent) gates, garbled-circuit
// communication under half-gates with free XOR, and GMW Beaver-triple
// count. Rounds equal the circuit depth.
type SecureCost struct {
	BitGates     int64
	NonLinear    int64
	GarbledBytes int64
	GMWTriples   int64
	Rounds       int
}

// SecureCost computes the MPC/garbling cost model of Section 1.
func (c *CompiledQuery) SecureCost(wordBits, kappaBits int) SecureCost {
	bc := c.inner.Obliv.C.BitCostAt(wordBits)
	return SecureCost{
		BitGates:     bc.Total,
		NonLinear:    bc.NonLinear,
		GarbledBytes: bc.GarbledBytes(kappaBits),
		GMWTriples:   bc.GMWTriples(),
		Rounds:       c.inner.Obliv.C.Depth(),
	}
}

// BitLevel lowers the compiled word-level circuit to a literal Boolean
// circuit (every wire one bit; gates AND/OR/XOR only) at the given word
// width, returning its gate count and depth — the paper's strict §4.1
// model made concrete. Width must be 64 when the defaults are in play
// (the dummy-handling sentinel needs the full word).
func (c *CompiledQuery) BitLevel(width int) (gates, depth int, err error) {
	res, err := bitblast.Blast(c.inner.Obliv.C, width)
	if err != nil {
		return 0, 0, err
	}
	return res.C.Size(), res.C.Depth(), nil
}

// WriteArtifact serializes the oblivious circuit with its packing
// metadata — the object an outsourced-processing server or MPC party
// receives. Load it back with LoadArtifact.
func (c *CompiledQuery) WriteArtifact(w io.Writer) (int64, error) {
	return c.inner.Obliv.WriteTo(w)
}

// Artifact is a loaded oblivious circuit: evaluable, but without the
// compile-time metadata of a CompiledQuery.
type Artifact struct {
	oc *core.ObliviousCircuit
}

// LoadArtifact deserializes a circuit written by WriteArtifact.
func LoadArtifact(r io.Reader) (*Artifact, error) {
	oc, err := core.ReadObliviousCircuit(r)
	if err != nil {
		return nil, err
	}
	return &Artifact{oc: oc}, nil
}

// Evaluate runs the loaded circuit; db must be keyed and shaped as the
// artifact's input specs demand (for PANDA artifacts: panda.PrepareDB
// naming, which EvaluatePrepared of the original CompiledQuery used).
func (a *Artifact) Evaluate(db map[string]*Relation) (map[int]*Relation, error) {
	return a.EvaluateCtx(context.Background(), db)
}

// EvaluateCtx is Evaluate under a context, matching the facade's other
// Ctx variants: the gate loop polls ctx (deadline and cancellation
// surface as ErrBudgetExceeded / ErrCanceled), any guard.Budget carried
// by ctx applies, and panics are contained as ErrInternal.
func (a *Artifact) EvaluateCtx(ctx context.Context, db map[string]*Relation) (out map[int]*Relation, err error) {
	defer guard.Recover(&err)
	return a.oc.EvaluateCtx(ctx, db)
}

// Gates returns the loaded circuit's word-gate count.
func (a *Artifact) Gates() int { return a.oc.C.Size() }

// Depth returns the loaded circuit's depth.
func (a *Artifact) Depth() int { return a.oc.C.Depth() }

// WriteDot renders the relational circuit in Graphviz DOT format.
func (c *CompiledQuery) WriteDot(w io.Writer, name string) error {
	return c.inner.Rel.WriteDot(w, name)
}

// PrepareInputs renames the atom relations of db to the input layout the
// circuits (and artifacts) expect.
func (c *CompiledQuery) PrepareInputs(db Database) (map[string]*Relation, error) {
	return panda.PrepareDB(c.inner.Query, db)
}

func fmtGate(rc *relcircuit.Circuit, id int) string {
	g := rc.Gates[id]
	return fmt.Sprintf("g%d: %s %s in=%v schema=%v card≤%.6g", g.ID, g.Kind, g.Label, g.In, g.Schema, g.Out.Card)
}

// ParseConstraints parses a textual degree-constraint list, e.g.
// "R <= 100; S <= 50; S|B <= 4" (see internal/query.ParseDC for the
// grammar).
func ParseConstraints(q *Query, src string) (DCSet, error) { return query.ParseDC(q, src) }

// BooleanQuery is a compiled decision circuit for a Boolean CQ.
type BooleanQuery struct {
	inner *core.BooleanCircuit
}

// CompileBoolean compiles a Boolean conjunctive query (no free
// variables) into an oblivious decision circuit.
func CompileBoolean(q *Query, dcs DCSet) (*BooleanQuery, error) {
	return CompileBooleanCtx(context.Background(), q, dcs)
}

// Decide evaluates the decision circuit on db.
func (b *BooleanQuery) Decide(db Database) (bool, error) { return b.inner.Decide(db) }

// Stats returns the decision circuit's word-gate count and depth.
func (b *BooleanQuery) Stats() (gates, depth int) {
	return b.inner.Obliv.C.Size(), b.inner.Obliv.C.Depth()
}

// PolymatroidBound returns LOGDAPB(Q) in bits (log₂ of the worst-case
// output size bound) under the constraints.
func PolymatroidBound(q *Query, dcs DCSet) (*big.Rat, error) {
	return PolymatroidBoundCtx(context.Background(), q, dcs)
}

// Widths bundles the width measures of Sections 6-7.
type Widths struct {
	Fhtw   *big.Rat // fractional hypertree width (uniform-N exponent)
	DAFhtw *big.Rat // degree-aware fhtw in bits under the constraints
	DASubw *big.Rat // degree-aware submodular width in bits
}

// ComputeWidths returns fhtw, da-fhtw, and da-subw for the query
// (free-connex variants for non-full queries).
func ComputeWidths(q *Query, dcs DCSet) (Widths, error) {
	return ComputeWidthsCtx(context.Background(), q, dcs)
}

// OutputSensitiveQuery bundles the two circuit families of Theorem 5.
type OutputSensitiveQuery struct {
	plan  *yannakakis.Plan
	count *yannakakis.CountCircuit
}

// OutputSensitive prepares the output-sensitive pipeline: a GHD plan of
// degree-aware-fhtw-optimal width and the OUT-computing circuit.
func OutputSensitive(q *Query, dcs DCSet) (*OutputSensitiveQuery, error) {
	return OutputSensitiveCtx(context.Background(), q, dcs)
}

// Count evaluates the first circuit family: |Q(D)| from DC alone.
func (o *OutputSensitiveQuery) Count(db Database) (int, error) {
	return o.count.Count(db, false)
}

// EvalCircuit builds the second circuit family for a given output bound;
// it computes Q(D) for every conforming D with |Q(D)| ≤ out.
func (o *OutputSensitiveQuery) EvalCircuit(out int) (*yannakakis.EvalCircuit, error) {
	return o.plan.CompileEval(float64(out))
}

// Evaluate runs the full two-phase protocol: count, then build and run
// the evaluation circuit with OUT = |Q(D)|.
func (o *OutputSensitiveQuery) Evaluate(db Database) (*Relation, error) {
	return o.EvaluateCtx(context.Background(), db)
}

// CountCircuitStats reports the OUT-circuit's relational stats.
func (o *OutputSensitiveQuery) CountCircuitStats() (gates, depth int, cost float64) {
	return o.count.Circuit.Size(), o.count.Circuit.Depth(), o.count.Circuit.Cost()
}

// WidthBits returns the plan's da-fhtw in bits.
func (o *OutputSensitiveQuery) WidthBits() *big.Rat { return o.plan.Width }
