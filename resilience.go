// Resilience layer of the facade: context-aware compile/evaluate
// variants, resource budgets, panic containment at the API boundary,
// and tiered degradation.
//
// Every entry point here follows the same contract:
//
//   - the context's deadline and cancellation are honored inside the
//     hot loops (LP pivots, proof-sequence search, circuit
//     construction, gate evaluation), so calls return promptly;
//   - a *Budget attached with WithBudget caps LP pivots, circuit gate
//     counts, and intermediate-relation rows;
//   - failures carry a typed cause — errors.Is against
//     ErrBudgetExceeded, ErrCanceled, ErrInvalidInput, or ErrInternal
//     classifies them — and panics escaping the internals are converted
//     to ErrInternal instead of crossing the API boundary.
package circuitql

import (
	"context"
	"fmt"
	"math/big"

	"circuitql/internal/bound"
	"circuitql/internal/core"
	"circuitql/internal/ghd"
	"circuitql/internal/guard"
	"circuitql/internal/obs"
	"circuitql/internal/qos"
	"circuitql/internal/query"
	"circuitql/internal/yannakakis"
)

// Budget caps the resources a compile or evaluate call may consume:
// LP pivots, circuit gate counts, and intermediate-relation rows. The
// wall clock is capped by the context's deadline. Attach with
// WithBudget; a nil budget (or absent field) means unlimited.
type Budget = guard.Budget

// WithBudget attaches a resource budget to the context. Every
// context-aware entry point consults it.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	return guard.WithBudget(ctx, b)
}

// Typed failure causes. Classify errors from the context-aware entry
// points with errors.Is.
var (
	// ErrBudgetExceeded: a resource cap tripped — LP pivots, gates,
	// rows, or the context's deadline (wall clock is a budget too).
	ErrBudgetExceeded = guard.ErrBudgetExceeded
	// ErrCanceled: the context was canceled explicitly.
	ErrCanceled = guard.ErrCanceled
	// ErrInvalidInput: the query, constraints, or database are
	// malformed or nonconforming.
	ErrInvalidInput = guard.ErrInvalidInput
	// ErrInternal: an internal invariant broke; the panic payload is
	// preserved on the wrapping *guard.InternalError.
	ErrInternal = guard.ErrInternal
	// ErrOverloaded: the serving engine shed the request at admission
	// (queue full or low priority under load). The wrapping
	// *OverloadError carries the lane, reason, and a retry-after hint.
	ErrOverloaded = guard.ErrOverloaded
)

// OverloadError is the typed shed failure: which lane rejected the
// request, why, and how long the caller should back off. Retrieve with
// errors.As; it matches ErrOverloaded under errors.Is.
type OverloadError = guard.OverloadError

// CompileCtx is Compile under a context: the exact LPs, the
// proof-sequence search, and both circuit-construction layers poll ctx
// and respect any Budget it carries. A pathological query under a tight
// deadline or gate cap returns ErrBudgetExceeded instead of hanging.
func CompileCtx(ctx context.Context, q *Query, dcs DCSet) (cq *CompiledQuery, err error) {
	defer guard.Recover(&err)
	c, err := core.CompileQueryCtx(ctx, q, dcs)
	if err != nil {
		return nil, err
	}
	return &CompiledQuery{inner: c}, nil
}

// EvaluateCtx is Evaluate under a context. The database is validated
// upfront against the query and the compiled constraint set (missing
// relations, arity mismatches, cardinality or degree overruns surface
// as ErrInvalidInput before any circuit work starts).
func (c *CompiledQuery) EvaluateCtx(ctx context.Context, db Database) (out *Relation, err error) {
	defer guard.Recover(&err)
	if err := query.ValidateDB(c.inner.Query, c.inner.DC, db); err != nil {
		return nil, err
	}
	return c.inner.EvaluateObliviousCtx(ctx, db)
}

// EvaluateRelationalCtx is EvaluateRelational under a context.
func (c *CompiledQuery) EvaluateRelationalCtx(ctx context.Context, db Database, check bool) (out *Relation, err error) {
	defer guard.Recover(&err)
	if err := query.ValidateDB(c.inner.Query, c.inner.DC, db); err != nil {
		return nil, err
	}
	return c.inner.EvaluateRelationalCtx(ctx, db, check)
}

// EvaluateRAMCtx is EvaluateRAM under a context, with upfront database
// validation (no constraint conformance — the RAM evaluator accepts any
// instance).
func EvaluateRAMCtx(ctx context.Context, q *Query, db Database) (out *Relation, err error) {
	defer guard.Recover(&err)
	if err := query.ValidateDB(q, nil, db); err != nil {
		return nil, err
	}
	return query.EvaluateCtx(ctx, q, db)
}

// CompileBooleanCtx is CompileBoolean under a context (see CompileCtx).
func CompileBooleanCtx(ctx context.Context, q *Query, dcs DCSet) (bq *BooleanQuery, err error) {
	defer guard.Recover(&err)
	bc, err := core.CompileBooleanCtx(ctx, q, dcs)
	if err != nil {
		return nil, err
	}
	return &BooleanQuery{inner: bc}, nil
}

// DecideCtx is Decide under a context.
func (b *BooleanQuery) DecideCtx(ctx context.Context, db Database) (ok bool, err error) {
	defer guard.Recover(&err)
	return b.inner.DecideCtx(ctx, db)
}

// OutputSensitiveCtx is OutputSensitive under a context: the width
// search, the per-bag PANDA-C compilations, and the count-circuit
// construction all poll ctx and respect any Budget it carries.
func OutputSensitiveCtx(ctx context.Context, q *Query, dcs DCSet) (o *OutputSensitiveQuery, err error) {
	defer guard.Recover(&err)
	plan, err := yannakakis.NewPlanCtx(ctx, q, dcs)
	if err != nil {
		return nil, err
	}
	cc, err := plan.CompileCountCtx(ctx)
	if err != nil {
		return nil, err
	}
	return &OutputSensitiveQuery{plan: plan, count: cc}, nil
}

// CountCtx is Count under a context.
func (o *OutputSensitiveQuery) CountCtx(ctx context.Context, db Database) (n int, err error) {
	defer guard.Recover(&err)
	return o.count.CountCtx(ctx, db, false)
}

// EvaluateCtx is the two-phase Evaluate under a context.
func (o *OutputSensitiveQuery) EvaluateCtx(ctx context.Context, db Database) (out *Relation, err error) {
	defer guard.Recover(&err)
	n, err := o.count.CountCtx(ctx, db, false)
	if err != nil {
		return nil, err
	}
	ec, err := o.plan.CompileEvalCtx(ctx, float64(n))
	if err != nil {
		return nil, err
	}
	return ec.EvaluateCtx(ctx, db, false)
}

// ComputeWidthsCtx is ComputeWidths under a context.
func ComputeWidthsCtx(ctx context.Context, q *Query, dcs DCSet) (w Widths, err error) {
	defer guard.Recover(&err)
	f, _, err := ghd.FhtwCtx(ctx, q)
	if err != nil {
		return w, err
	}
	df, _, err := ghd.DAFhtwCtx(ctx, q, dcs)
	if err != nil {
		return w, err
	}
	ds, err := ghd.DASubwCtx(ctx, q, dcs, 24)
	if err != nil {
		return w, err
	}
	w.Fhtw, w.DAFhtw, w.DASubw = f, df, ds
	return w, nil
}

// PolymatroidBoundCtx is PolymatroidBound under a context.
func PolymatroidBoundCtx(ctx context.Context, q *Query, dcs DCSet) (r *big.Rat, err error) {
	defer guard.Recover(&err)
	res, err := bound.LogDAPBCtx(ctx, q, dcs)
	if err != nil {
		return nil, err
	}
	return res.LogValue, nil
}

// Evaluation tier names, in degradation order. TierVM is the engine's
// vectorized fast path (ServeResult.Tier); EvaluateResilient's own
// ladder starts at the oblivious tier.
const (
	TierVM         = "vm"
	TierOblivious  = "oblivious"
	TierRelational = "relational"
	TierRAM        = "ram"
)

// TierAttempt records one tier's outcome during EvaluateResilient: its
// name and the error that made it fail (nil for the tier that served).
type TierAttempt struct {
	Tier string
	Err  error
}

// TierReport explains how EvaluateResilient produced its answer: which
// tier served the result and why every earlier tier was rejected.
type TierReport struct {
	Served   string // name of the tier that produced the result
	Attempts []TierAttempt
}

// String renders the report as a one-line degradation trace.
func (r *TierReport) String() string {
	s := ""
	for i, a := range r.Attempts {
		if i > 0 {
			s += " → "
		}
		if a.Err == nil {
			s += a.Tier + " (served)"
		} else {
			s += fmt.Sprintf("%s (%v)", a.Tier, a.Err)
		}
	}
	return s
}

// EvaluateResilient evaluates the query with tiered degradation:
// the oblivious circuit first, the relational circuit if it fails, the
// reference RAM evaluator last. All three compute the same Q(D), so a
// fault in a faster tier degrades the execution strategy, never the
// answer. Each tier runs under its own panic containment; the report
// records every attempt. When the context itself is dead (canceled or
// past its deadline) later tiers are skipped — they would fail the
// same way — and the first error is returned.
//
// With a deadline on ctx, each non-final tier runs under its share of
// the remaining wall clock (remaining ÷ tiers left), so a stuck faster
// tier exhausts only its slice and the cheaper fallbacks still get
// their turn; the last tier runs under the request context itself.
//
// Every attempt and serve is also recorded on the process-wide tier
// ledger (and, when ctx carries an obs tracer, as a tier/<name> span),
// so the /metrics tier counters agree with the returned TierReport no
// matter whether a request went through an Engine or this facade path.
func (c *CompiledQuery) EvaluateResilient(ctx context.Context, db Database) (*Relation, *TierReport, error) {
	report := &TierReport{}
	if err := func() (err error) {
		defer guard.Recover(&err)
		return query.ValidateDB(c.inner.Query, c.inner.DC, db)
	}(); err != nil {
		return nil, report, err
	}
	tiers := []struct {
		name string
		run  func(ctx context.Context) (*Relation, error)
	}{
		{TierOblivious, func(ctx context.Context) (out *Relation, err error) {
			defer guard.Recover(&err)
			return c.inner.EvaluateObliviousCtx(ctx, db)
		}},
		{TierRelational, func(ctx context.Context) (out *Relation, err error) {
			defer guard.Recover(&err)
			return c.inner.EvaluateRelationalCtx(ctx, db, false)
		}},
		{TierRAM, func(ctx context.Context) (out *Relation, err error) {
			defer guard.Recover(&err)
			return query.EvaluateCtx(ctx, c.inner.Query, db)
		}},
	}
	for i, t := range tiers {
		// Estimate 0: the facade has no latency history, so shares bound
		// tier attempts but never skip one outright.
		tctx, cancel, _, _ := qos.PlanTier(ctx, len(tiers)-i, 0)
		tierCtx, sp := obs.StartSpan(tctx, obs.StageTier+t.name)
		obs.Tiers.Attempt(t.name)
		out, err := t.run(tierCtx)
		cancel()
		if err == nil && out != nil {
			sp.AddInt(obs.CounterRows, int64(out.Len()))
		}
		sp.SetError(err)
		sp.End()
		report.Attempts = append(report.Attempts, TierAttempt{Tier: t.name, Err: err})
		if err == nil {
			obs.Tiers.Serve(t.name, i > 0)
			report.Served = t.name
			return out, report, nil
		}
		if ctx != nil && ctx.Err() != nil {
			return nil, report, err
		}
	}
	last := report.Attempts[len(report.Attempts)-1].Err
	return nil, report, fmt.Errorf("circuitql: all evaluation tiers failed: %w", last)
}
