package circuitql

import (
	"context"
	"errors"
	"testing"
	"time"

	"circuitql/internal/faultinject"
	"circuitql/internal/guard"
	"circuitql/internal/obs"
	"circuitql/internal/workload"
)

func triangleSetup(t *testing.T) (*Query, DCSet, Database, *CompiledQuery) {
	t.Helper()
	q, err := ParseQuery("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
	if err != nil {
		t.Fatal(err)
	}
	db := workload.TriangleDB(workload.TriangleUniform, 42, 12)
	dcs, err := DeriveConstraints(q, db)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := Compile(q, dcs)
	if err != nil {
		t.Fatal(err)
	}
	return q, dcs, db, cq
}

// pathologicalQuery is a 5-cycle whose PANDA-C compilation takes
// minutes: the Shannon-flow LPs have hundreds of submodularity rows.
// Only usable under a budget or deadline.
func pathologicalQuery(t *testing.T) (*Query, DCSet) {
	t.Helper()
	q, err := ParseQuery("Q(A,B,C,D,E) :- R1(A,B), R2(B,C), R3(C,D), R4(D,E), R5(E,A)")
	if err != nil {
		t.Fatal(err)
	}
	return q, UniformCardinalities(q, 64)
}

func TestCompileLPPivotBudgetTrips(t *testing.T) {
	q, err := ParseQuery("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
	if err != nil {
		t.Fatal(err)
	}
	b := &Budget{MaxLPPivots: 3}
	ctx := WithBudget(context.Background(), b)
	_, err = CompileCtx(ctx, q, UniformCardinalities(q, 1024))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if b.Pivots() <= 3 {
		t.Fatalf("Pivots() = %d, want > 3", b.Pivots())
	}
}

func TestCompileGateBudgetTrips(t *testing.T) {
	q, err := ParseQuery("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithBudget(context.Background(), &Budget{MaxGates: 50})
	_, err = CompileCtx(ctx, q, UniformCardinalities(q, 1024))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestCompileDeadlineReturnsTypedError(t *testing.T) {
	q, dcs := pathologicalQuery(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := CompileCtx(ctx, q, dcs)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded (deadline is a budget)", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("deadline expiry must not classify as explicit cancellation")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("compile held the deadline hostage for %v", elapsed)
	}
}

func TestCompileCancellationReturnsWithin100ms(t *testing.T) {
	q, dcs := pathologicalQuery(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := CompileCtx(ctx, q, dcs)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the compile get into the LPs
	cancel()
	canceledAt := time.Now()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		if lag := time.Since(canceledAt); lag > 100*time.Millisecond {
			t.Fatalf("cancellation honored after %v, want ≤ 100ms", lag)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("compile ignored cancellation")
	}
}

func TestEvaluateResilientServesObliviousWhenHealthy(t *testing.T) {
	_, _, db, cq := triangleSetup(t)
	out, report, err := cq.EvaluateResilient(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if report.Served != TierOblivious {
		t.Fatalf("served = %q, want %q (report: %s)", report.Served, TierOblivious, report)
	}
	if len(report.Attempts) != 1 || report.Attempts[0].Err != nil {
		t.Fatalf("attempts = %+v", report.Attempts)
	}
	want, err := EvaluateRAM(cq.inner.Query, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(want) {
		t.Fatal("resilient result differs from reference")
	}
}

func TestEvaluateResilientDegradesToRelational(t *testing.T) {
	q, _, db, cq := triangleSetup(t)
	in := faultinject.New()
	in.FailAt(faultinject.SiteWordGate, 1, nil)
	ctx := faultinject.WithInjector(context.Background(), in)
	out, report, err := cq.EvaluateResilient(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if report.Served != TierRelational {
		t.Fatalf("served = %q, want %q (report: %s)", report.Served, TierRelational, report)
	}
	if !errors.Is(report.Attempts[0].Err, faultinject.ErrInjected) {
		t.Fatalf("oblivious attempt error = %v, want injected", report.Attempts[0].Err)
	}
	want, err := EvaluateRAM(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(want) {
		t.Fatal("relational tier result differs from reference")
	}
}

// A forced oblivious-tier fault must be visible on the process-wide
// tier ledger exactly as the TierReport records it: one relational
// serve, one relational fallback — not zero (the pre-fix facade bug:
// only the engine path recorded tiers) and not two.
func TestEvaluateResilientRecordsTierLedger(t *testing.T) {
	_, _, db, cq := triangleSetup(t)
	in := faultinject.New()
	in.FailAt(faultinject.SiteWordGate, 1, nil)
	ctx := faultinject.WithInjector(context.Background(), in)

	before := obs.Tiers.Snapshot()
	_, report, err := cq.EvaluateResilient(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if report.Served != TierRelational {
		t.Fatalf("served = %q, want %q", report.Served, TierRelational)
	}
	after := obs.Tiers.Snapshot()

	// Snapshot order is degradation order: vm, oblivious, relational,
	// ram (the facade's resilient path starts at the oblivious tier).
	obl, rel, ram := 1, 2, 3
	deltas := []struct {
		name string
		got  int64
		want int64
	}{
		{"oblivious attempts", after[obl].Attempts - before[obl].Attempts, 1},
		{"oblivious serves", after[obl].Serves - before[obl].Serves, 0},
		{"relational attempts", after[rel].Attempts - before[rel].Attempts, 1},
		{"relational serves", after[rel].Serves - before[rel].Serves, 1},
		{"relational fallbacks", after[rel].Fallbacks - before[rel].Fallbacks, 1},
		{"ram attempts", after[ram].Attempts - before[ram].Attempts, 0},
	}
	for _, d := range deltas {
		if d.got != d.want {
			t.Errorf("%s delta = %d, want %d", d.name, d.got, d.want)
		}
	}
}

func TestEvaluateResilientDegradesToRAM(t *testing.T) {
	q, _, db, cq := triangleSetup(t)
	in := faultinject.New()
	in.FailAt(faultinject.SiteWordGate, 1, nil)
	in.FailAt(faultinject.SiteRelGate, 1, nil)
	ctx := faultinject.WithInjector(context.Background(), in)
	out, report, err := cq.EvaluateResilient(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if report.Served != TierRAM {
		t.Fatalf("served = %q, want %q (report: %s)", report.Served, TierRAM, report)
	}
	for i, tier := range []string{TierOblivious, TierRelational} {
		if !errors.Is(report.Attempts[i].Err, faultinject.ErrInjected) {
			t.Fatalf("%s attempt error = %v, want injected", tier, report.Attempts[i].Err)
		}
	}
	want, err := EvaluateRAM(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(want) {
		t.Fatal("RAM tier result differs from reference")
	}
}

func TestEvaluateResilientAllTiersFail(t *testing.T) {
	_, _, db, cq := triangleSetup(t)
	in := faultinject.New()
	in.FailAt(faultinject.SiteWordGate, 1, nil)
	in.FailAt(faultinject.SiteRelGate, 1, nil)
	in.FailAt(faultinject.SiteRAMJoin, 1, nil)
	ctx := faultinject.WithInjector(context.Background(), in)
	_, report, err := cq.EvaluateResilient(ctx, db)
	if err == nil {
		t.Fatal("expected failure when every tier is faulted")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected cause", err)
	}
	if len(report.Attempts) != 3 || report.Served != "" {
		t.Fatalf("report = %+v", report)
	}
}

func TestEvaluateResilientContainsPanics(t *testing.T) {
	q, _, db, cq := triangleSetup(t)
	in := faultinject.New()
	in.PanicAt(faultinject.SiteWordGate, 1, "injected chaos")
	ctx := faultinject.WithInjector(context.Background(), in)
	out, report, err := cq.EvaluateResilient(ctx, db)
	if err != nil {
		t.Fatalf("panic escaped containment: %v", err)
	}
	if report.Served != TierRelational {
		t.Fatalf("served = %q, want %q", report.Served, TierRelational)
	}
	oblErr := report.Attempts[0].Err
	if !errors.Is(oblErr, ErrInternal) {
		t.Fatalf("oblivious attempt error = %v, want ErrInternal", oblErr)
	}
	var ie *guard.InternalError
	if !errors.As(oblErr, &ie) || ie.Payload != "injected chaos" {
		t.Fatalf("panic payload not preserved: %v", oblErr)
	}
	want, err := EvaluateRAM(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(want) {
		t.Fatal("result differs from reference after panic containment")
	}
}

func TestEvaluateValidatesDatabaseUpfront(t *testing.T) {
	q, _, db, cq := triangleSetup(t)

	// Missing relation.
	broken := Database{}
	for k, v := range db {
		broken[k] = v
	}
	delete(broken, "T")
	if _, err := cq.Evaluate(broken); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("missing relation: err = %v, want ErrInvalidInput", err)
	}

	// Arity mismatch.
	bad := Database{}
	for k, v := range db {
		bad[k] = v
	}
	bad["T"] = NewRelation("A")
	if _, err := cq.Evaluate(bad); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("arity mismatch: err = %v, want ErrInvalidInput", err)
	}

	// Cardinality overrun against the compiled constraint set.
	big := Database{}
	for k, v := range db {
		big[k] = v
	}
	over := NewRelation("A", "B")
	for i := int64(0); i < 1000; i++ {
		over.Insert(i, i+1)
	}
	big["R"] = over
	if _, err := cq.Evaluate(big); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("cardinality overrun: err = %v, want ErrInvalidInput", err)
	}

	// The RAM reference validates the query/database pairing too.
	if _, err := EvaluateRAM(q, bad); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("EvaluateRAM arity mismatch: err = %v, want ErrInvalidInput", err)
	}
}

func TestEvaluateRowBudgetTrips(t *testing.T) {
	_, _, db, cq := triangleSetup(t)
	ctx := WithBudget(context.Background(), &Budget{MaxRows: 1})
	_, err := cq.EvaluateRelationalCtx(ctx, db, false)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}
