package circuitql

import (
	"bytes"
	"strings"
	"testing"

	"circuitql/internal/workload"
)

func compiledTriangle(t *testing.T) (*CompiledQuery, *Query, Database) {
	t.Helper()
	q, err := ParseQuery("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
	if err != nil {
		t.Fatal(err)
	}
	db := workload.TriangleDB(workload.TriangleUniform, 5, 8)
	dcs, err := DeriveConstraints(q, db)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := Compile(q, dcs)
	if err != nil {
		t.Fatal(err)
	}
	return cq, q, db
}

func TestSecureCost(t *testing.T) {
	cq, _, _ := compiledTriangle(t)
	sc := cq.SecureCost(32, 128)
	if sc.BitGates <= 0 || sc.NonLinear <= 0 || sc.GarbledBytes <= 0 || sc.Rounds <= 0 {
		t.Fatalf("SecureCost = %+v", sc)
	}
	if sc.GarbledBytes != sc.NonLinear*32 {
		t.Fatalf("garbled pricing wrong: %d vs %d nonlinear", sc.GarbledBytes, sc.NonLinear)
	}
	// Narrower words cost less.
	if cq.SecureCost(8, 128).BitGates >= sc.BitGates {
		t.Fatal("narrow words should be cheaper")
	}
	if sc.GMWTriples != sc.NonLinear {
		t.Fatal("GMW triples should equal nonlinear gates")
	}
}

func TestArtifactRoundTripViaFacade(t *testing.T) {
	cq, _, db := compiledTriangle(t)
	var buf bytes.Buffer
	if _, err := cq.WriteArtifact(&buf); err != nil {
		t.Fatal(err)
	}
	art, err := LoadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if art.Gates() != cq.Stats().Gates || art.Depth() != cq.Stats().Depth {
		t.Fatal("artifact shape mismatch")
	}
	pdb, err := cq.PrepareInputs(db)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := art.Evaluate(pdb)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cq.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rel := range outs {
		if rel.Equal(want) {
			found = true
		}
	}
	if !found {
		t.Fatal("loaded artifact does not reproduce the query result")
	}
}

func TestWriteDotFacade(t *testing.T) {
	cq, _, _ := compiledTriangle(t)
	var sb strings.Builder
	if err := cq.WriteDot(&sb, "triangle"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph \"triangle\"") {
		t.Fatal("DOT output malformed")
	}
}

func TestGateListNonEmpty(t *testing.T) {
	cq, _, _ := compiledTriangle(t)
	gl := cq.GateList()
	if len(gl) == 0 || !strings.Contains(gl[0], "input") {
		t.Fatalf("GateList = %v", gl[:min(3, len(gl))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBitLevelFacade(t *testing.T) {
	q, err := ParseQuery("Q(A,B) :- R(A,B)")
	if err != nil {
		t.Fatal(err)
	}
	cq, err := Compile(q, UniformCardinalities(q, 3))
	if err != nil {
		t.Fatal(err)
	}
	gates, depth, err := cq.BitLevel(64)
	if err != nil {
		t.Fatal(err)
	}
	wordGates := cq.Stats().Gates
	if gates <= wordGates || depth <= 0 {
		t.Fatalf("bit level = %d gates depth %d (word %d)", gates, depth, wordGates)
	}
	if _, _, err := cq.BitLevel(0); err == nil {
		t.Fatal("width 0 accepted")
	}
}
